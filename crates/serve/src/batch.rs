//! Batch prediction: dedupe once, serve many times.
//!
//! Basic-block streams are massively redundant — a hot loop body shows up
//! thousands of times in a dynamic trace.  The batch engine splits the work
//! the way a serving process does:
//!
//! * **Ingest** ([`PreparedBatch`]): identical [`Microkernel`]s are
//!   deduplicated by hash (a multiply-xor hasher tuned for the small integer
//!   keys kernels hash into — the default SipHash costs more than a whole
//!   prediction) and the input order is remembered as a slot table.  This
//!   happens once per workload.
//! * **Serve** ([`BatchPredictor::predict_prepared`]): only the distinct
//!   kernels are evaluated — sharded across threads with
//!   [`palmed_par::par_map`], one scratch buffer per shard — and results are
//!   scattered back through the slot table, so the output order always
//!   matches the input order regardless of scheduling.  This is the part
//!   that re-runs on every model update, every candidate mapping, every
//!   what-if query against the same workload.
//!
//! [`BatchPredictor::predict`] chains the two for one-shot use.

use crate::compiled::CompiledModel;
use crate::corpus::Corpus;
use palmed_isa::Microkernel;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// A multiply-xor hasher in the FxHash family: one round per written word.
///
/// Dedup keys are microkernels — short sequences of `(u32, u32)` pairs — for
/// which a DoS-resistant SipHash is pure overhead (measured: hashing cost
/// comparable to an entire IPC prediction).  Collisions only cost an extra
/// equality check, so hash quality beyond "mixes all words" buys nothing.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxLikeHasher(u64);

impl FxLikeHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn round(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl Hasher for FxLikeHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.round(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.round(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.round(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.round(n as u64);
    }
}

type FxBuildHasher = BuildHasherDefault<FxLikeHasher>;

/// Output of one batch: per-input predictions plus dedup statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchResult {
    /// Predicted IPC per input kernel, in input order (`None` where the model
    /// covers no instruction of the kernel).
    pub ipcs: Vec<Option<f64>>,
    /// Number of distinct kernels actually evaluated.
    pub distinct: usize,
}

/// A deduplicated workload, ready to be served any number of times.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PreparedBatch {
    /// The distinct kernels, in first-occurrence order.
    distinct: Vec<Microkernel>,
    /// For every input position, the index of its kernel in `distinct`.
    slots: Vec<u32>,
}

impl PreparedBatch {
    /// Dedupes a sequence of kernels into a servable batch.
    pub fn from_kernels<'k>(kernels: impl IntoIterator<Item = &'k Microkernel>) -> Self {
        let mut index_of: HashMap<&Microkernel, u32, FxBuildHasher> = HashMap::default();
        let mut order: Vec<&'k Microkernel> = Vec::new();
        let mut slots: Vec<u32> = Vec::new();
        for kernel in kernels {
            let next = order.len() as u32;
            let index = *index_of.entry(kernel).or_insert_with(|| {
                order.push(kernel);
                next
            });
            slots.push(index);
        }
        PreparedBatch { distinct: order.into_iter().cloned().collect(), slots }
    }

    /// Dedupes the blocks of a corpus.
    pub fn from_corpus(corpus: &Corpus) -> Self {
        Self::from_kernels(corpus.blocks.iter().map(|b| &b.kernel))
    }

    /// Number of input kernels the batch stands for.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the batch holds no kernels.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Number of distinct kernels.
    pub fn distinct(&self) -> usize {
        self.distinct.len()
    }
}

/// A sharded batch front-end over a [`CompiledModel`].
#[derive(Debug, Clone, Copy)]
pub struct BatchPredictor<'m> {
    model: &'m CompiledModel,
    shard_size: usize,
}

impl<'m> BatchPredictor<'m> {
    /// Default number of distinct kernels per work shard.
    pub const DEFAULT_SHARD_SIZE: usize = 256;

    /// Wraps a compiled model with the default shard size.
    pub fn new(model: &'m CompiledModel) -> Self {
        BatchPredictor { model, shard_size: Self::DEFAULT_SHARD_SIZE }
    }

    /// Overrides the shard size (clamped to at least 1).  Smaller shards
    /// balance skewed workloads better; larger shards amortise scheduling.
    #[must_use]
    pub fn with_shard_size(mut self, shard_size: usize) -> Self {
        self.shard_size = shard_size.max(1);
        self
    }

    /// The model this predictor serves.
    pub fn model(&self) -> &CompiledModel {
        self.model
    }

    /// One-shot convenience: ingest and serve in a single call.
    pub fn predict(&self, kernels: &[Microkernel]) -> BatchResult {
        self.predict_prepared(&PreparedBatch::from_kernels(kernels.iter()))
    }

    /// One-shot convenience over a corpus (by reference, no clones).
    pub fn predict_corpus(&self, corpus: &Corpus) -> BatchResult {
        self.predict_prepared(&PreparedBatch::from_corpus(corpus))
    }

    /// Steady-state serve: evaluates the distinct kernels of a prepared
    /// batch (sharded, one scratch buffer per shard) and scatters the
    /// results back into input order.
    pub fn predict_prepared(&self, batch: &PreparedBatch) -> BatchResult {
        let shards: Vec<&[Microkernel]> = batch.distinct.chunks(self.shard_size).collect();
        let per_shard: Vec<Vec<Option<f64>>> = palmed_par::par_map(&shards, |shard| {
            let mut scratch = self.model.scratch();
            shard.iter().map(|kernel| self.model.ipc_with(kernel, &mut scratch)).collect()
        });
        let unique: Vec<Option<f64>> = per_shard.into_iter().flatten().collect();
        BatchResult {
            ipcs: batch.slots.iter().map(|&i| unique[i as usize]).collect(),
            distinct: batch.distinct.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use palmed_core::ConjunctiveMapping;
    use palmed_isa::InstId;

    fn model() -> CompiledModel {
        let mut m = ConjunctiveMapping::with_resources(2);
        m.set_usage(InstId(0), vec![1.0, 0.5]);
        m.set_usage(InstId(1), vec![0.0, 0.5]);
        CompiledModel::compile("palmed", &m)
    }

    #[test]
    fn batch_matches_per_call_predictions_in_order() {
        let model = model();
        let kernels: Vec<Microkernel> = (0..300)
            .map(|i| Microkernel::pair(InstId(0), 1 + i % 4, InstId(1), 1 + i % 3))
            .collect();
        let batch = BatchPredictor::new(&model).with_shard_size(16).predict(&kernels);
        assert_eq!(batch.ipcs.len(), kernels.len());
        assert_eq!(batch.distinct, 12); // 4 × 3 distinct (na, nb) combinations
        let mut scratch = model.scratch();
        for (kernel, ipc) in kernels.iter().zip(&batch.ipcs) {
            assert_eq!(
                ipc.map(f64::to_bits),
                model.ipc_with(kernel, &mut scratch).map(f64::to_bits),
                "kernel {kernel}"
            );
        }
    }

    #[test]
    fn prepared_batch_can_be_served_repeatedly() {
        let model = model();
        let kernels: Vec<Microkernel> = (0..64)
            .map(|i| Microkernel::pair(InstId(0), 1 + i % 2, InstId(1), 1))
            .collect();
        let prepared = PreparedBatch::from_kernels(kernels.iter());
        assert_eq!(prepared.len(), 64);
        assert_eq!(prepared.distinct(), 2);
        assert!(!prepared.is_empty());
        let predictor = BatchPredictor::new(&model);
        let first = predictor.predict_prepared(&prepared);
        let second = predictor.predict_prepared(&prepared);
        assert_eq!(first, second);
        assert_eq!(first, predictor.predict(&kernels));
    }

    #[test]
    fn unsupported_kernels_stay_none() {
        let model = model();
        let kernels = vec![
            Microkernel::single(InstId(7)),
            Microkernel::single(InstId(0)),
            Microkernel::new(),
            Microkernel::single(InstId(7)),
        ];
        let batch = BatchPredictor::new(&model).predict(&kernels);
        assert_eq!(batch.ipcs[0], None);
        assert!(batch.ipcs[1].is_some());
        assert_eq!(batch.ipcs[2], None);
        assert_eq!(batch.ipcs[3], None);
        assert_eq!(batch.distinct, 3);
    }

    #[test]
    fn empty_batch_is_fine() {
        let model = model();
        let batch = BatchPredictor::new(&model).predict(&[]);
        assert!(batch.ipcs.is_empty());
        assert_eq!(batch.distinct, 0);
        assert!(PreparedBatch::default().is_empty());
    }

    #[test]
    fn shard_size_is_clamped() {
        let model = model();
        let p = BatchPredictor::new(&model).with_shard_size(0);
        let kernels = vec![Microkernel::single(InstId(0)); 5];
        assert_eq!(p.predict(&kernels).distinct, 1);
    }

    #[test]
    fn fx_hasher_mixes_word_writes() {
        use std::hash::BuildHasher;
        let build = FxBuildHasher::default();
        let a = Microkernel::pair(InstId(0), 1, InstId(1), 2);
        let b = Microkernel::pair(InstId(0), 2, InstId(1), 1);
        // Same multiset built in a different order must hash identically.
        let c = Microkernel::pair(InstId(1), 1, InstId(0), 2);
        assert_eq!(build.hash_one(&a), build.hash_one(&a));
        assert_ne!(build.hash_one(&a), build.hash_one(&b));
        assert_eq!(build.hash_one(&b), build.hash_one(&c));
        // The byte-slice path is exercised too (e.g. str keys elsewhere).
        assert_ne!(build.hash_one("some string"), build.hash_one("some strinh"));
    }
}
