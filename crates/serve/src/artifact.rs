//! The versioned codecs for inferred models.
//!
//! Two formats share the [`ModelArtifact`] type: the `PALMED-MODEL v1` text
//! codec implemented here (the interchange/debug form) and the binary
//! `PALMED-MODEL v2b` codec in the private `binfmt` module (the fast load
//! path, reached through
//! [`ModelArtifact::render_v2`]/[`ModelArtifact::parse_v2`]).
//! Loading sniffs the format from the first bytes
//! ([`ModelArtifact::parse_bytes`]), and a v1↔v2 round trip is bit-identical.
//! See the crate-level docs for both grammars.  Design decisions of the text
//! form:
//!
//! * **Hand-rolled writer and parser.**  The workspace's vendored serde is a
//!   deliberate no-op shim (no network access to fetch the real one), so the
//!   artifact layer cannot lean on derives; a line-oriented format with an
//!   explicit grammar is also easier to inspect, diff and hand-edit than any
//!   generic serialisation.
//! * **Lossless numbers.**  Usage values are written with Rust's shortest
//!   round-trip `Display` form and re-read with `str::parse::<f64>`, which
//!   reproduces every bit; a reloaded model predicts bit-identically.
//! * **Integrity checksum.**  The final line carries an FNV-1a 64 hash of
//!   every preceding byte.  Truncation, bit rot and hand edits that forget to
//!   re-hash are rejected at load time instead of silently mis-predicting.

use crate::binfmt::{ArtifactBytes, RawIndex};
use crate::codec::ModelKind;
use crate::compiled::CompiledModel;
use palmed_core::ConjunctiveMapping;
use palmed_isa::{ExecClass, Extension, InstDesc, InstId, InstructionSet};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};

/// The lazily materialised mapping of a [`ModelArtifact`].
///
/// Most artifacts are born with their mapping (inference, v1 parse, eager
/// v2b parse) and the cell is pre-filled.  Serve-only v2b loads instead
/// retain the validated artifact bytes and defer the dense row rebuild —
/// the dominant cost of a v2b load, and work the serving path never reads —
/// until the first explicit [`ModelArtifact::mapping`] access, which pays it
/// exactly once.
struct MappingCell {
    cell: OnceLock<ConjunctiveMapping>,
    /// Rebuild source for deferred cells; `None` when the cell was born
    /// materialised — and taken (releasing the byte buffer's refcount) the
    /// moment the rebuild runs, so a materialised artifact does not pin the
    /// artifact bytes for the rest of its life.
    deferred: Mutex<Option<DeferredMapping>>,
}

/// The validated bytes a deferred mapping rebuilds from.  Shares the
/// artifact buffer with the registry's serving entry — retaining it costs
/// one `Arc`, not a copy.
struct DeferredMapping {
    bytes: ArtifactBytes,
    index: RawIndex,
}

impl MappingCell {
    fn ready(mapping: ConjunctiveMapping) -> Self {
        MappingCell { cell: OnceLock::from(mapping), deferred: Mutex::new(None) }
    }

    fn deferred(bytes: ArtifactBytes, index: RawIndex) -> Self {
        MappingCell {
            cell: OnceLock::new(),
            deferred: Mutex::new(Some(DeferredMapping { bytes, index })),
        }
    }

    fn get(&self) -> &ConjunctiveMapping {
        let mut initialised_here = false;
        let mapping = self.cell.get_or_init(|| {
            initialised_here = true;
            // `get_or_init` runs the closure exactly once.  The rebuild
            // state is only *read* here (an `Arc` bump + index clone), not
            // taken: concurrent `Clone`s racing the rebuild must still find
            // it — they see an unfilled cell and need the state to stay
            // deferred themselves.
            let (bytes, index) = {
                let guard =
                    self.deferred.lock().expect("rebuild never panics on validated bytes");
                let deferred = guard.as_ref().expect("unfilled cells carry rebuild state");
                (deferred.bytes.clone(), deferred.index.clone())
            };
            index.rebuild_mapping(bytes.as_slice())
        });
        if initialised_here {
            // The rows exist now; drop this cell's hold on the artifact
            // bytes.  Only the initialising call pays this lock — steady
            // state is a bare `OnceLock` read.
            self.deferred.lock().expect("rebuild never panics on validated bytes").take();
        }
        mapping
    }

    fn is_ready(&self) -> bool {
        self.cell.get().is_some()
    }
}

impl Clone for MappingCell {
    fn clone(&self) -> Self {
        // Once materialised, clone the mapping; the rebuild source is no
        // longer needed.
        if let Some(mapping) = self.cell.get() {
            return MappingCell::ready(mapping.clone());
        }
        let guard = self.deferred.lock().expect("rebuild never panics on validated bytes");
        match guard.as_ref() {
            Some(deferred) => {
                MappingCell::deferred(deferred.bytes.clone(), deferred.index.clone())
            }
            // A concurrent `mapping()` call finished between the two checks:
            // the rebuild state is only released *after* the cell fills, and
            // the mutex orders that release before this observation.
            None => MappingCell::ready(
                self.cell.get().expect("rebuild state is released only after the cell fills").clone(),
            ),
        }
    }
}

impl fmt::Debug for MappingCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.cell.get() {
            Some(mapping) => mapping.fmt(f),
            None => f.write_str("<deferred mapping>"),
        }
    }
}

/// A persistable inferred model: provenance, instruction set and mapping.
///
/// The mapping may be lazily materialised (serve-only binary loads defer the
/// dense row rebuild); access it through [`ModelArtifact::mapping`].
/// Equality, rendering and compilation force materialisation — only the
/// serving path, which reads none of them, stays rebuild-free.
#[derive(Debug, Clone)]
pub struct ModelArtifact {
    /// Architecture / machine preset this model serves (e.g. `"skl-sp-like"`).
    pub machine: String,
    /// Name of the originating disjunctive mapping / machine description the
    /// model was inferred against (provenance only; not needed to predict).
    pub source: String,
    /// The instruction inventory the mapping's [`InstId`]s index into.
    pub instructions: InstructionSet,
    /// The inferred conjunctive resource mapping, possibly deferred.
    mapping: MappingCell,
}

impl PartialEq for ModelArtifact {
    /// Structural equality; forces materialisation of deferred mappings.
    fn eq(&self, other: &Self) -> bool {
        self.machine == other.machine
            && self.source == other.source
            && self.instructions == other.instructions
            && self.mapping() == other.mapping()
    }
}

/// Why an artifact failed to load.
#[derive(Debug)]
pub enum ArtifactError {
    /// The underlying file could not be read or written.
    Io(std::io::Error),
    /// The first content line is not `PALMED-MODEL v1`.
    MissingHeader,
    /// The final `checksum` line is absent (e.g. a truncated file).
    MissingChecksum,
    /// The stored checksum does not match the file content.
    ChecksumMismatch {
        /// Checksum stored in the file.
        stored: u64,
        /// Checksum recomputed over the file content.
        computed: u64,
    },
    /// A line violates the grammar.
    Malformed {
        /// 1-based line number in the artifact text.
        line: usize,
        /// Human-readable description of the violation.
        reason: String,
    },
    /// A byte-level violation of a binary artifact layout.
    MalformedBinary {
        /// Byte offset the violation was detected at.
        offset: usize,
        /// Human-readable description of the violation.
        reason: String,
    },
    /// The buffer holds a valid artifact of a different kind than the
    /// caller can load (e.g. a disjunctive `PALMED-DISJ v1` buffer handed
    /// to the conjunctive codec).
    WrongKind {
        /// The kind the caller expected.
        expected: ModelKind,
        /// The kind the buffer sniffed as.
        found: ModelKind,
    },
    /// A watched file kept changing while the registry was reading it: the
    /// stat taken after the read disagreed with the one taken before, on
    /// every retry.  The bytes read may interleave two writers and are
    /// discarded even if they happen to validate.
    TornRead {
        /// The file that could not be read stably.
        path: PathBuf,
    },
    /// The artifact decoded cleanly but its predictions hash to a different
    /// fingerprint than the sidecar recorded at save time (see
    /// [`model_fingerprint`](crate::fingerprint::model_fingerprint)) — the
    /// model is *valid* but not the one that was deployed.
    FingerprintMismatch {
        /// Fingerprint the sidecar file recorded.
        expected: u64,
        /// Fingerprint recomputed from the loaded model's predictions.
        computed: u64,
    },
    /// A keyed `PALMED-FPRINT v2` sidecar's HMAC tag does not verify under
    /// the configured signing key: whoever wrote the sidecar did not hold
    /// the key, so the fingerprint proves nothing about provenance (see
    /// [`Sidecar::verify`](crate::fingerprint::Sidecar::verify)).
    SignatureMismatch {
        /// Hex rendering of the tag the sidecar recorded.
        stored: String,
        /// Hex rendering of the tag recomputed under the configured key.
        computed: String,
    },
    /// The registry requires signed sidecars
    /// ([`ModelRegistry::require_signed`](crate::ModelRegistry::require_signed))
    /// but the artifact's sidecar is missing or is an unkeyed
    /// `PALMED-FPRINT v1` — nothing ties the bytes to a key holder, so the
    /// load is refused before the model is even decoded for provenance.
    UnsignedArtifact {
        /// The artifact file whose sidecar is missing or unsigned.
        path: PathBuf,
    },
}

impl ArtifactError {
    /// The byte offset a binary-layout rejection points at, when the error
    /// carries one.  Fuzzing and triage use this to locate the violated
    /// field; text-format errors carry a line number in their message
    /// instead.
    pub fn offset(&self) -> Option<usize> {
        match self {
            ArtifactError::MalformedBinary { offset, .. } => Some(*offset),
            _ => None,
        }
    }

    /// A stable kebab-case class label for the rejection, used as a metric
    /// name suffix (`fuzz.reject.<class>`) and an event field.  Classes
    /// identify the *kind* of failure, not the instance — every
    /// `Malformed { .. }` is `"malformed-text"` regardless of line or
    /// reason.
    pub fn class(&self) -> &'static str {
        match self {
            ArtifactError::Io(_) => "io",
            ArtifactError::MissingHeader => "missing-header",
            ArtifactError::MissingChecksum => "missing-checksum",
            ArtifactError::ChecksumMismatch { .. } => "checksum-mismatch",
            ArtifactError::Malformed { .. } => "malformed-text",
            ArtifactError::MalformedBinary { .. } => "malformed-binary",
            ArtifactError::WrongKind { .. } => "wrong-kind",
            ArtifactError::TornRead { .. } => "torn-read",
            ArtifactError::FingerprintMismatch { .. } => "fingerprint-mismatch",
            ArtifactError::SignatureMismatch { .. } => "signature-mismatch",
            ArtifactError::UnsignedArtifact { .. } => "unsigned-artifact",
        }
    }
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Io(e) => write!(f, "artifact I/O error: {e}"),
            ArtifactError::MissingHeader => {
                write!(f, "not a model artifact: missing `PALMED-MODEL v1` header")
            }
            ArtifactError::MissingChecksum => {
                write!(f, "truncated artifact: missing `checksum` trailer")
            }
            ArtifactError::ChecksumMismatch { stored, computed } => write!(
                f,
                "artifact corrupted: stored checksum {stored:016x} != computed {computed:016x}"
            ),
            ArtifactError::Malformed { line, reason } => {
                write!(f, "malformed artifact at line {line}: {reason}")
            }
            ArtifactError::MalformedBinary { offset, reason } => {
                write!(f, "malformed binary artifact at byte {offset}: {reason}")
            }
            ArtifactError::WrongKind { expected, found } => {
                write!(f, "wrong artifact kind: expected `{expected}`, found `{found}`")
            }
            ArtifactError::TornRead { path } => {
                write!(f, "torn read: `{}` kept changing while being read", path.display())
            }
            ArtifactError::FingerprintMismatch { expected, computed } => write!(
                f,
                "fingerprint mismatch: sidecar recorded {expected:016x}, model predicts {computed:016x}"
            ),
            ArtifactError::SignatureMismatch { stored, computed } => write!(
                f,
                "sidecar signature mismatch: stored tag {stored} does not verify (key computes {computed})"
            ),
            ArtifactError::UnsignedArtifact { path } => write!(
                f,
                "unsigned artifact: `{}` has no signed PALMED-FPRINT v2 sidecar but the registry requires one",
                path.display()
            ),
        }
    }
}

impl std::error::Error for ArtifactError {}

impl From<std::io::Error> for ArtifactError {
    fn from(e: std::io::Error) -> Self {
        ArtifactError::Io(e)
    }
}

// The text trailer's hash; one definition in `crate::checksum` serves all
// codecs, re-exported here where the v1 format historically lived.
pub use crate::checksum::fnv1a64;

/// Replaces whitespace in a name so it stays a single token on its line.
/// Shared with the binary codec: both formats must sanitise names
/// identically for the v1↔v2 round trip to be bit-identical.
pub(crate) fn token(name: &str) -> String {
    let cleaned: String =
        name.chars().map(|c| if c.is_whitespace() { '_' } else { c }).collect();
    if cleaned.is_empty() {
        "_".to_string()
    } else {
        cleaned
    }
}

impl ModelArtifact {
    /// Bundles an inferred mapping with its instruction set and provenance.
    ///
    /// # Panics
    ///
    /// Panics if the mapping references an instruction outside the set — an
    /// artifact must stay self-describing.
    pub fn new(
        machine: impl Into<String>,
        source: impl Into<String>,
        instructions: InstructionSet,
        mapping: ConjunctiveMapping,
    ) -> Self {
        for inst in mapping.instructions() {
            assert!(
                inst.index() < instructions.len(),
                "mapping references {inst} but the instruction set has {} entries",
                instructions.len()
            );
        }
        ModelArtifact {
            machine: machine.into(),
            source: source.into(),
            instructions,
            mapping: MappingCell::ready(mapping),
        }
    }

    /// Assembles a serve-only artifact whose mapping rebuild is deferred to
    /// the first [`ModelArtifact::mapping`] access.  The bytes and index must
    /// come from a successful [`crate::binfmt::validate`] run — the
    /// validator's `slots <= instructions` check is what keeps the artifact
    /// self-describing without re-walking the rows here.
    pub(crate) fn deferred(
        machine: String,
        source: String,
        instructions: InstructionSet,
        bytes: ArtifactBytes,
        index: RawIndex,
    ) -> Self {
        ModelArtifact { machine, source, instructions, mapping: MappingCell::deferred(bytes, index) }
    }

    /// The inferred conjunctive resource mapping.
    ///
    /// Serve-only loads defer the dense row rebuild; the first call pays it
    /// once and every later call returns the cached rows.
    pub fn mapping(&self) -> &ConjunctiveMapping {
        self.mapping.get()
    }

    /// True when the mapping is materialised — `false` for a serve-only load
    /// that has not yet paid the dense rebuild.
    pub fn mapping_ready(&self) -> bool {
        self.mapping.is_ready()
    }

    /// Flattens the artifact's mapping into a [`CompiledModel`] named after
    /// the machine.
    pub fn compile(&self) -> CompiledModel {
        CompiledModel::compile(self.machine.clone(), self.mapping())
    }

    /// Renders the artifact in the `PALMED-MODEL v1` text format, checksum
    /// line included.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("PALMED-MODEL v1\n");
        out.push_str(&format!("machine {}\n", token(&self.machine)));
        out.push_str(&format!("source {}\n", token(&self.source)));
        out.push_str(&format!("instructions {}\n", self.instructions.len()));
        for (id, desc) in self.instructions.iter() {
            out.push_str(&format!(
                "I {} {} {} {}\n",
                id.index(),
                token(&desc.name),
                desc.class,
                desc.extension
            ));
        }
        let mapping = self.mapping();
        out.push_str(&format!("resources {}\n", mapping.num_resources()));
        for r in mapping.resources() {
            out.push_str(&format!("R {} {}\n", r.index(), token(mapping.resource_name(r))));
        }
        out.push_str(&format!("rows {}\n", mapping.num_instructions()));
        for inst in mapping.instructions() {
            out.push_str(&format!("M {}", inst.index()));
            let usage = mapping.usage_vector(inst).expect("mapped instruction has a row");
            for (r, &value) in usage.iter().enumerate() {
                if value != 0.0 {
                    out.push_str(&format!(" {r}:{value}"));
                }
            }
            out.push('\n');
        }
        out.push_str("end\n");
        out.push_str(&format!("checksum {:016x}\n", fnv1a64(out.as_bytes())));
        out
    }

    /// Parses an artifact from its text form, verifying the checksum.
    ///
    /// # Errors
    ///
    /// Returns an [`ArtifactError`] on any grammar violation, truncation or
    /// checksum mismatch; never panics on untrusted input.
    pub fn parse(text: &str) -> Result<Self, ArtifactError> {
        // --- Integrity: locate and verify the checksum trailer. ---
        let body_end = text.rfind("checksum ").ok_or(ArtifactError::MissingChecksum)?;
        if body_end > 0 && text.as_bytes()[body_end - 1] != b'\n' {
            return Err(ArtifactError::MissingChecksum);
        }
        let checksum_line = text[body_end..].trim_end();
        let stored = checksum_line
            .strip_prefix("checksum ")
            .and_then(|h| u64::from_str_radix(h.trim(), 16).ok())
            .ok_or(ArtifactError::MissingChecksum)?;
        let computed = fnv1a64(&text.as_bytes()[..body_end]);
        if stored != computed {
            return Err(ArtifactError::ChecksumMismatch { stored, computed });
        }

        // --- Grammar: a small line cursor over the checksummed body. ---
        let mut lines = text[..body_end]
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l.trim()))
            .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'));
        let mut next = |what: &str| -> Result<(usize, &str), ArtifactError> {
            lines.next().ok_or_else(|| ArtifactError::Malformed {
                line: 0,
                reason: format!("unexpected end of artifact, expected {what}"),
            })
        };
        let malformed = |line: usize, reason: String| ArtifactError::Malformed { line, reason };

        let (line, header) = next("header")?;
        if header != "PALMED-MODEL v1" {
            return Err(if line == 1 && !header.starts_with("PALMED-MODEL") {
                ArtifactError::MissingHeader
            } else {
                malformed(line, format!("unsupported header `{header}`"))
            });
        }

        let mut field = |key: &str| -> Result<String, ArtifactError> {
            let (line, l) = next(key)?;
            l.strip_prefix(key)
                .map(|v| v.trim().to_string())
                .ok_or_else(|| malformed(line, format!("expected `{key} ...`, found `{l}`")))
        };
        let machine = field("machine ")?;
        let source = field("source ")?;

        let count = |value: &str, line: usize| -> Result<usize, ArtifactError> {
            value.parse().map_err(|_| malformed(line, format!("invalid count `{value}`")))
        };

        // Instruction section.
        let (line, l) = next("instructions")?;
        let n = l
            .strip_prefix("instructions ")
            .ok_or_else(|| malformed(line, format!("expected `instructions <n>`, found `{l}`")))
            .and_then(|v| count(v, line))?;
        let mut instructions = InstructionSet::new();
        for i in 0..n {
            let (line, l) = next("an `I` line")?;
            let mut parts = l.split_whitespace();
            let ok = parts.next() == Some("I")
                && parts.next().and_then(|v| v.parse::<usize>().ok()) == Some(i);
            let name = parts.next();
            let class = parts.next().and_then(ExecClass::from_name);
            let extension = parts.next().and_then(Extension::from_name);
            match (ok, name, class, extension) {
                (true, Some(name), Some(class), Some(extension)) if parts.next().is_none() => {
                    if instructions.find(name).is_some() {
                        return Err(malformed(line, format!("duplicate instruction `{name}`")));
                    }
                    instructions.push(InstDesc { name: name.to_string(), class, extension });
                }
                _ => {
                    return Err(malformed(
                        line,
                        format!("expected `I {i} <name> <class> <extension>`, found `{l}`"),
                    ))
                }
            }
        }

        // Resource section.
        let (line, l) = next("resources")?;
        let m = l
            .strip_prefix("resources ")
            .ok_or_else(|| malformed(line, format!("expected `resources <m>`, found `{l}`")))
            .and_then(|v| count(v, line))?;
        // `m` is untrusted (the checksum is integrity, not authentication):
        // cap the pre-allocation; the per-line loop below bounds the real
        // growth by the file length.
        let mut resource_names = Vec::with_capacity(m.min(4096));
        for r in 0..m {
            let (line, l) = next("an `R` line")?;
            let mut parts = l.split_whitespace();
            let ok = parts.next() == Some("R")
                && parts.next().and_then(|v| v.parse::<usize>().ok()) == Some(r);
            match (ok, parts.next(), parts.next()) {
                (true, Some(name), None) => resource_names.push(name.to_string()),
                _ => return Err(malformed(line, format!("expected `R {r} <name>`, found `{l}`"))),
            }
        }
        let mut mapping = ConjunctiveMapping::new(resource_names);

        // Usage rows.
        let (line, l) = next("rows")?;
        let k = l
            .strip_prefix("rows ")
            .ok_or_else(|| malformed(line, format!("expected `rows <k>`, found `{l}`")))
            .and_then(|v| count(v, line))?;
        for _ in 0..k {
            let (line, l) = next("an `M` line")?;
            let mut parts = l.split_whitespace();
            if parts.next() != Some("M") {
                return Err(malformed(line, format!("expected `M <inst> ...`, found `{l}`")));
            }
            let inst = parts
                .next()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&i| i < instructions.len())
                .ok_or_else(|| malformed(line, format!("invalid instruction index in `{l}`")))?;
            let inst = InstId(inst as u32);
            if mapping.supports(inst) {
                return Err(malformed(line, format!("duplicate row for instruction {inst}")));
            }
            let mut usage = vec![0.0; m];
            for entry in parts {
                let (r, value) = entry
                    .split_once(':')
                    .and_then(|(r, v)| Some((r.parse::<usize>().ok()?, v.parse::<f64>().ok()?)))
                    .filter(|&(r, v)| r < m && v.is_finite() && v >= 0.0)
                    .ok_or_else(|| {
                        malformed(line, format!("invalid usage entry `{entry}` in `{l}`"))
                    })?;
                if usage[r] != 0.0 {
                    return Err(malformed(line, format!("duplicate resource {r} in `{l}`")));
                }
                usage[r] = value;
            }
            mapping.set_usage(inst, usage);
        }

        let (line, l) = next("`end`")?;
        if l != "end" {
            return Err(malformed(line, format!("expected `end`, found `{l}`")));
        }
        if let Some((line, l)) = lines.next() {
            return Err(malformed(line, format!("trailing content `{l}` after `end`")));
        }

        Ok(ModelArtifact { machine, source, instructions, mapping: MappingCell::ready(mapping) })
    }

    /// Renders the artifact in the binary `PALMED-MODEL v2b` format (see the
    /// crate docs for the layout), checksum trailer included.
    pub fn render_v2(&self) -> Vec<u8> {
        use crate::codec::ArtifactCodec;
        crate::binfmt::V2bCodec::encode(self)
    }

    /// Parses a binary `v2b` artifact, verifying the checksum.
    ///
    /// # Errors
    ///
    /// Returns an [`ArtifactError`] on any layout violation, truncation or
    /// checksum mismatch; never panics on untrusted input.
    pub fn parse_v2(bytes: &[u8]) -> Result<Self, ArtifactError> {
        use crate::codec::ArtifactCodec;
        crate::binfmt::V2bCodec::decode(bytes)
    }

    /// Parses an artifact in either conjunctive format, sniffing the version
    /// from the first bytes: the `v2b` magic selects the binary codec,
    /// anything else without a known magic must be v1 text.
    ///
    /// # Errors
    ///
    /// Returns an [`ArtifactError`] from the selected codec; non-UTF-8 input
    /// without a binary magic is reported as
    /// [`ArtifactError::MissingHeader`], and a disjunctive-family buffer as
    /// [`ArtifactError::WrongKind`] (load those through
    /// [`DisjArtifact`](crate::DisjArtifact) or the registry).
    pub fn parse_bytes(bytes: &[u8]) -> Result<Self, ArtifactError> {
        Self::parse_any(bytes).map(|(artifact, _)| artifact)
    }

    /// Format-sniffing parse that also surfaces the verbatim
    /// [`CompiledModel`] a binary artifact carries (v1 callers compile from
    /// the mapping instead).
    pub(crate) fn parse_any(
        bytes: &[u8],
    ) -> Result<(Self, Option<CompiledModel>), ArtifactError> {
        match ModelKind::sniff(bytes) {
            ModelKind::ConjunctiveV2b => {
                let (artifact, compiled) = crate::binfmt::decode(bytes)?;
                Ok((artifact, Some(compiled)))
            }
            ModelKind::ConjunctiveV1 => {
                let text =
                    std::str::from_utf8(bytes).map_err(|_| ArtifactError::MissingHeader)?;
                Ok((Self::parse(text)?, None))
            }
            found => {
                Err(ArtifactError::WrongKind { expected: ModelKind::ConjunctiveV1, found })
            }
        }
    }

    /// Saves the rendered v1 text artifact to a file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ArtifactError> {
        std::fs::write(path, self.render())?;
        Ok(())
    }

    /// Saves the binary `v2b` artifact to a file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save_v2(&self, path: impl AsRef<Path>) -> Result<(), ArtifactError> {
        std::fs::write(path, self.render_v2())?;
        Ok(())
    }

    /// Loads and verifies an artifact from a file, accepting either the v1
    /// text or the v2b binary format (sniffed from the first bytes).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors and every [`ArtifactError`] of
    /// [`ModelArtifact::parse_bytes`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ArtifactError> {
        Self::parse_bytes(&std::fs::read(path)?)
    }

    /// The artifact's determinism fingerprint: a canonical FNV-1a-64 hash
    /// over the compiled model's predictions on the pinned probe corpus (see
    /// [`model_fingerprint`](crate::fingerprint::model_fingerprint)).  Every
    /// load mode of the same model — owned, borrowed, memory-mapped,
    /// migrated — produces the same value.
    pub fn fingerprint(&self) -> u64 {
        use crate::compiled::KernelLoad;
        self.compile().fingerprint(self.instructions.len())
    }

    /// Saves the v1 text artifact plus a fingerprint sidecar
    /// (`<path>.fp`), returning the recorded fingerprint.  Registries that
    /// later load `<path>` verify the model against the sidecar.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from either write.
    pub fn save_with_fingerprint(&self, path: impl AsRef<Path>) -> Result<u64, ArtifactError> {
        let path = path.as_ref();
        self.save(path)?;
        let fp = self.fingerprint();
        crate::fingerprint::write_sidecar(path, fp)?;
        Ok(fp)
    }

    /// Saves the binary v2b artifact plus a fingerprint sidecar
    /// (`<path>.fp`), returning the recorded fingerprint.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from either write.
    pub fn save_v2_with_fingerprint(&self, path: impl AsRef<Path>) -> Result<u64, ArtifactError> {
        let path = path.as_ref();
        self.save_v2(path)?;
        let fp = self.fingerprint();
        crate::fingerprint::write_sidecar(path, fp)?;
        Ok(fp)
    }

    /// Saves the binary v2b artifact plus a **signed** `PALMED-FPRINT v2`
    /// sidecar (HMAC-SHA256 tag under `key` — see
    /// [`write_signed_sidecar`](crate::fingerprint::write_signed_sidecar)),
    /// returning the recorded fingerprint.  Registries configured with the
    /// key verify provenance, not just determinism, on every load.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from either write.
    pub fn save_v2_with_signed_fingerprint(
        &self,
        path: impl AsRef<Path>,
        key: &[u8],
    ) -> Result<u64, ArtifactError> {
        let path = path.as_ref();
        self.save_v2(path)?;
        let fp = self.fingerprint();
        crate::fingerprint::write_signed_sidecar(path, fp, key)?;
        Ok(fp)
    }
}

#[cfg(test)]
pub(crate) mod tests_support {
    use super::*;

    /// A small artifact shared by this module's and the binary codec's tests.
    pub(crate) fn example() -> ModelArtifact {
        let instructions = InstructionSet::paper_example();
        let mut mapping = ConjunctiveMapping::new(vec!["r1".into(), "r01".into(), "r016".into()]);
        mapping.set_usage(InstId(2), vec![0.0, 0.5, 1.0 / 3.0]);
        mapping.set_usage(InstId(3), vec![1.0, 0.5, 1.0 / 3.0]);
        ModelArtifact::new("skl-ports016", "paper-fig1", instructions, mapping)
    }
}

#[cfg(test)]
mod tests {
    use super::tests_support::example;
    use super::*;
    use palmed_isa::Microkernel;

    #[test]
    fn render_parse_round_trip_is_exact() {
        let artifact = example();
        let text = artifact.render();
        let reloaded = ModelArtifact::parse(&text).unwrap();
        assert_eq!(reloaded, artifact);
        // And rendering again is byte-stable.
        assert_eq!(reloaded.render(), text);
    }

    #[test]
    fn reloaded_model_predicts_bit_identically() {
        let artifact = example();
        let reloaded = ModelArtifact::parse(&artifact.render()).unwrap();
        let compiled = reloaded.compile();
        let mut scratch = compiled.scratch();
        let k = Microkernel::pair(InstId(2), 2, InstId(3), 1);
        assert_eq!(
            artifact.mapping().ipc(&k).map(f64::to_bits),
            compiled.ipc_with(&k, &mut scratch).map(f64::to_bits)
        );
    }

    #[test]
    fn checksum_rejects_corruption() {
        let text = example().render();
        // Flip one usage digit without touching the checksum line.
        let corrupted = text.replacen("0.5", "0.7", 1);
        assert_ne!(corrupted, text);
        match ModelArtifact::parse(&corrupted) {
            Err(ArtifactError::ChecksumMismatch { .. }) => {}
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn truncation_is_rejected() {
        let text = example().render();
        // Cut anywhere before the trailer: the checksum line disappears.
        let truncated = &text[..text.len() / 2];
        assert!(matches!(
            ModelArtifact::parse(truncated),
            Err(ArtifactError::MissingChecksum)
        ));
        // Dropping body lines but keeping the trailer is caught by the hash.
        let without_rows: String = text
            .lines()
            .filter(|l| !l.starts_with("M "))
            .map(|l| format!("{l}\n"))
            .collect();
        assert!(matches!(
            ModelArtifact::parse(&without_rows),
            Err(ArtifactError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn garbage_is_rejected_with_useful_errors() {
        assert!(matches!(ModelArtifact::parse(""), Err(ArtifactError::MissingChecksum)));
        let mut body = String::from("PALMED-CORPUS v1\nend\n");
        body.push_str(&format!("checksum {:016x}\n", fnv1a64(body.as_bytes())));
        assert!(matches!(ModelArtifact::parse(&body), Err(ArtifactError::MissingHeader)));
        let mut body = String::from("PALMED-MODEL v1\nmachine x\nsource y\ninstructions zz\n");
        body.push_str(&format!("checksum {:016x}\n", fnv1a64(body.as_bytes())));
        match ModelArtifact::parse(&body) {
            Err(ArtifactError::Malformed { line: 4, .. }) => {}
            other => panic!("expected malformed line 4, got {other:?}"),
        }
    }

    #[test]
    fn huge_declared_counts_error_instead_of_panicking() {
        // The checksum is integrity, not authentication: an attacker can
        // re-hash a crafted body, so declared counts must not drive
        // allocations or panics.
        for body in [
            "PALMED-MODEL v1\nmachine m\nsource s\ninstructions 0\nresources 18446744073709551615\n",
            "PALMED-MODEL v1\nmachine m\nsource s\ninstructions 99999999999\n",
        ] {
            let mut text = body.to_string();
            text.push_str(&format!("checksum {:016x}\n", fnv1a64(text.as_bytes())));
            assert!(matches!(
                ModelArtifact::parse(&text),
                Err(ArtifactError::Malformed { .. })
            ));
        }
    }

    #[test]
    fn comments_are_checksummed_but_ignored_by_the_grammar() {
        let artifact = example();
        let text = artifact.render();
        let with_comment = text.replacen(
            "machine ",
            "# an inserted comment\nmachine ",
            1,
        );
        // Comment changed the bytes: the old checksum no longer matches...
        assert!(matches!(
            ModelArtifact::parse(&with_comment),
            Err(ArtifactError::ChecksumMismatch { .. })
        ));
        // ...but re-hashing the edited body makes it parse identically.
        let body_end = with_comment.rfind("checksum ").unwrap();
        let mut rehashed = with_comment[..body_end].to_string();
        rehashed.push_str(&format!("checksum {:016x}\n", fnv1a64(rehashed.as_bytes())));
        assert_eq!(ModelArtifact::parse(&rehashed).unwrap(), artifact);
    }

    #[test]
    fn v2_round_trip_is_exact_and_cross_consistent_with_v1() {
        let artifact = example();
        let bytes = artifact.render_v2();
        let from_v2 = ModelArtifact::parse_v2(&bytes).unwrap();
        assert_eq!(from_v2, artifact);
        // Byte-stable re-render and sniffing entry point.
        assert_eq!(from_v2.render_v2(), bytes);
        assert_eq!(ModelArtifact::parse_bytes(&bytes).unwrap(), artifact);
        // Crossing formats changes nothing: v1 text and v2 binary round
        // trips land on the same artifact, bit for bit.
        let from_v1 = ModelArtifact::parse(&artifact.render()).unwrap();
        assert_eq!(from_v1, from_v2);
        assert_eq!(from_v1.render_v2(), bytes);
        assert_eq!(from_v2.render(), from_v1.render());
    }

    #[test]
    fn v2_checksum_rejects_corruption_and_truncation() {
        let bytes = example().render_v2();
        // Flip a byte in the middle of the body.
        let mut corrupted = bytes.clone();
        let mid = corrupted.len() / 2;
        corrupted[mid] ^= 0x40;
        assert!(matches!(
            ModelArtifact::parse_v2(&corrupted),
            Err(ArtifactError::ChecksumMismatch { .. } | ArtifactError::MalformedBinary { .. })
        ));
        // Every strict-prefix truncation is rejected, including the one that
        // drops only the final checksum byte.
        for cut in 0..bytes.len() {
            assert!(
                ModelArtifact::parse_bytes(&bytes[..cut]).is_err(),
                "truncation at byte {cut} must not parse"
            );
        }
        assert!(ModelArtifact::parse_bytes(&bytes).is_ok());
    }

    #[test]
    fn v2_rejects_crafted_structural_violations() {
        // The checksum is integrity, not authentication: a crafted body can
        // re-hash itself, so structural checks must hold on their own.  Build
        // bodies by mutating a valid one and re-appending a fresh checksum.
        let valid = example().render_v2();
        let body = &valid[..valid.len() - 8];
        let rehash = |body: &[u8]| crate::codec::finish_trailer(body.to_vec());
        // Truncated body with a valid checksum: cursor runs out of bytes.
        let crafted = rehash(&body[..body.len() - 4]);
        assert!(matches!(
            ModelArtifact::parse_v2(&crafted),
            Err(ArtifactError::MalformedBinary { .. })
        ));
        // Declared string length far beyond the file: no huge allocation,
        // clean error.
        let mut huge = body.to_vec();
        let machine_len_at = crate::codec::V2B_MAGIC.len();
        huge[machine_len_at..machine_len_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            ModelArtifact::parse_v2(&rehash(&huge)),
            Err(ArtifactError::MalformedBinary { .. })
        ));
        // Trailing garbage after the CSR arrays.
        let mut padded = body.to_vec();
        padded.extend_from_slice(&[0u8; 3]);
        assert!(matches!(
            ModelArtifact::parse_v2(&rehash(&padded)),
            Err(ArtifactError::MalformedBinary { .. })
        ));
    }

    #[test]
    fn save_and_load_through_the_filesystem() {
        let artifact = example();
        let path = std::env::temp_dir().join("palmed-serve-artifact-test.palmed");
        artifact.save(&path).unwrap();
        let loaded = ModelArtifact::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded, artifact);
        assert!(matches!(
            ModelArtifact::load(std::env::temp_dir().join("palmed-serve-no-such-file")),
            Err(ArtifactError::Io(_))
        ));
    }

    #[test]
    #[should_panic(expected = "mapping references")]
    fn artifact_requires_a_covering_instruction_set() {
        let mut mapping = ConjunctiveMapping::with_resources(1);
        mapping.set_usage(InstId(99), vec![1.0]);
        ModelArtifact::new("m", "s", InstructionSet::paper_example(), mapping);
    }
}
