//! The disjunctive model family: `PALMED-DISJ v1` artifacts and their
//! compiled serving form.
//!
//! Palmed's own models are *conjunctive* (every instruction loads every
//! resource it maps to), but the baselines it is evaluated against learn
//! *disjunctive* port mappings: each instruction decomposes into µOPs, each
//! choosing one port among a set.  PMEvo re-evolves such a mapping from pair
//! benchmarks on every campaign — minutes of work whose result is a few
//! hundred `(port set, weight)` rows.  [`DisjArtifact`] persists those rows
//! once, so baselines load pre-built tables the way the real tools ship
//! published port mappings.
//!
//! * **Artifact** ([`DisjArtifact`]): machine/source provenance, the
//!   instruction inventory, and per-instruction µOP rows ([`DisjUop`]: a
//!   port *mask* over `num_ports` abstract ports plus a *weight*, the µOP
//!   multiplicity × inverse throughput).  Persisted as the length-prefixed
//!   little-endian `PALMED-DISJ v1` binary with the same strided FNV
//!   trailer and validate-pass discipline as `PALMED-MODEL v2b`
//!   (see [`crate::codec`]).
//! * **Compiled form** ([`CompiledDisjModel`]): the rows flattened into a
//!   CSR-style arena (`uop_ptr`/`masks`/`weights`).  It implements
//!   [`KernelLoad`] — the scratch vector holds one entry per non-empty
//!   subset of the abstract ports, each the subset-confined load divided by
//!   the subset width — so the execution time `max`imised by the provided
//!   combinators is exactly the optimal fractional port assignment bound,
//!   and the whole batch/registry serving plane works on disjunctive models
//!   unchanged.
//!
//! Predictions are **bit-identical** to PMEvo's own genome evaluation: the
//! hot loop accumulates per-mask loads in first-occurrence order and sums
//! subset-confined loads in that same order, reproducing
//! `PmEvoPredictor::predict_ipc` addition for addition (asserted by the
//! round-trip integration tests).

use crate::artifact::{token, ArtifactError};
use crate::codec::{
    f64_at, finish_trailer, push_f64, push_str, push_u32, u32_at, ArtifactCodec, Cursor,
    ModelKind, DISJ_MAGIC,
};
use crate::compiled::{KernelLoad, LOAD_SCRATCH};
use palmed_core::ThroughputPredictor;
use palmed_isa::{InstId, InstructionSet, Microkernel};
use std::cell::RefCell;
use std::path::Path;

/// Most abstract ports a disjunctive artifact may use.  The compiled form's
/// scratch enumerates every non-empty port subset, so the cap bounds the
/// scratch at `2^16 - 1` entries; real machines and PMEvo configurations use
/// 6–10 ports.
pub const MAX_DISJ_PORTS: u32 = 16;

/// One µOP hypothesis of a disjunctive row: the ports it may execute on and
/// its weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DisjUop {
    /// Bit mask over the model's abstract ports (non-zero, below
    /// `1 << num_ports`).
    pub mask: u32,
    /// Occupancy one instruction adds on the chosen port: µOP multiplicity ×
    /// inverse throughput.  Finite and positive.
    pub weight: f64,
}

/// A persistable disjunctive port mapping: provenance, instruction set and
/// per-instruction µOP rows.
///
/// The disjunctive counterpart of [`ModelArtifact`](crate::ModelArtifact);
/// see the module docs for the `PALMED-DISJ v1` layout.
#[derive(Debug, Clone, PartialEq)]
pub struct DisjArtifact {
    /// Architecture / machine preset this model serves.
    pub machine: String,
    /// Name of the originating trainer or machine description (provenance).
    pub source: String,
    /// The instruction inventory the rows' [`InstId`]s index into.
    pub instructions: InstructionSet,
    num_ports: u32,
    /// Sorted by instruction, each row non-empty.
    rows: Vec<(InstId, Vec<DisjUop>)>,
}

impl DisjArtifact {
    /// Bundles disjunctive rows with their instruction set and provenance.
    /// Rows may arrive in any order; they are sorted by instruction.
    ///
    /// # Panics
    ///
    /// Panics if `num_ports` is outside `1..=`[`MAX_DISJ_PORTS`], a row
    /// references an instruction outside the set or appears twice, a row is
    /// empty, a mask is zero or uses ports beyond `num_ports`, or a weight
    /// is not finite and positive — an artifact must stay self-describing
    /// and loadable.
    pub fn new(
        machine: impl Into<String>,
        source: impl Into<String>,
        instructions: InstructionSet,
        num_ports: u32,
        rows: Vec<(InstId, Vec<(u32, f64)>)>,
    ) -> Self {
        assert!(
            (1..=MAX_DISJ_PORTS).contains(&num_ports),
            "num_ports must be in 1..={MAX_DISJ_PORTS}, got {num_ports}"
        );
        let mut rows: Vec<(InstId, Vec<DisjUop>)> = rows
            .into_iter()
            .map(|(inst, uops)| {
                assert!(
                    inst.index() < instructions.len(),
                    "row references {inst} but the instruction set has {} entries",
                    instructions.len()
                );
                assert!(!uops.is_empty(), "row for {inst} has no µOPs");
                let uops = uops
                    .into_iter()
                    .map(|(mask, weight)| {
                        assert!(
                            mask != 0 && mask < (1 << num_ports),
                            "µOP mask {mask:#b} of {inst} is empty or exceeds {num_ports} ports"
                        );
                        assert!(
                            weight.is_finite() && weight > 0.0,
                            "µOP weight {weight} of {inst} is not finite and positive"
                        );
                        DisjUop { mask, weight }
                    })
                    .collect();
                (inst, uops)
            })
            .collect();
        rows.sort_by_key(|(inst, _)| *inst);
        for pair in rows.windows(2) {
            assert!(pair[0].0 != pair[1].0, "duplicate row for instruction {}", pair[0].0);
        }
        DisjArtifact {
            machine: machine.into(),
            source: source.into(),
            instructions,
            num_ports,
            rows,
        }
    }

    /// Number of abstract ports the masks range over.
    pub fn num_ports(&self) -> u32 {
        self.num_ports
    }

    /// The per-instruction µOP rows, sorted by instruction.
    pub fn rows(&self) -> &[(InstId, Vec<DisjUop>)] {
        &self.rows
    }

    /// The µOP row of one instruction, if trained.
    pub fn row(&self, inst: InstId) -> Option<&[DisjUop]> {
        self.rows
            .binary_search_by_key(&inst, |(i, _)| *i)
            .ok()
            .map(|at| self.rows[at].1.as_slice())
    }

    /// Number of trained instructions.
    pub fn num_instructions(&self) -> usize {
        self.rows.len()
    }

    /// The rows in the plain `(instruction, [(mask, weight)])` form the
    /// trainers and machine descriptions exchange.
    pub fn to_rows(&self) -> Vec<(InstId, Vec<(u32, f64)>)> {
        self.rows
            .iter()
            .map(|(inst, uops)| (*inst, uops.iter().map(|u| (u.mask, u.weight)).collect()))
            .collect()
    }

    /// Flattens the rows into the compiled serving form, named after the
    /// machine.
    pub fn compile(&self) -> CompiledDisjModel {
        let slots = self.rows.last().map_or(0, |(inst, _)| inst.index() + 1);
        let mut uop_ptr = Vec::with_capacity(slots + 1);
        let mut masks = Vec::new();
        let mut weights = Vec::new();
        uop_ptr.push(0u32);
        let mut next_row = self.rows.iter().peekable();
        for slot in 0..slots {
            if let Some((inst, uops)) = next_row.peek() {
                if inst.index() == slot {
                    for u in uops.iter() {
                        masks.push(u.mask);
                        weights.push(u.weight);
                    }
                    next_row.next();
                }
            }
            uop_ptr.push(masks.len() as u32);
        }
        CompiledDisjModel {
            name: token(&self.machine),
            num_ports: self.num_ports,
            uop_ptr,
            masks,
            weights,
        }
    }

    /// Serialises the artifact in the binary `PALMED-DISJ v1` format,
    /// checksum trailer included.
    pub fn render(&self) -> Vec<u8> {
        DisjCodec::encode(self)
    }

    /// Parses and verifies a `PALMED-DISJ v1` artifact.
    ///
    /// # Errors
    ///
    /// Returns an [`ArtifactError`] on any layout violation, truncation or
    /// checksum mismatch ([`ArtifactError::WrongKind`] when the buffer is a
    /// conjunctive artifact); never panics on untrusted input.
    pub fn parse(bytes: &[u8]) -> Result<Self, ArtifactError> {
        match ModelKind::sniff(bytes) {
            ModelKind::DisjunctiveV1 => DisjCodec::decode(bytes),
            found => Err(ArtifactError::WrongKind { expected: DisjCodec::KIND, found }),
        }
    }

    /// Saves the rendered artifact to a file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ArtifactError> {
        std::fs::write(path, self.render())?;
        Ok(())
    }

    /// Loads and verifies an artifact from a file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors and every [`DisjArtifact::parse`]
    /// failure.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ArtifactError> {
        Self::parse(&std::fs::read(path)?)
    }

    /// The artifact's determinism fingerprint (see
    /// [`model_fingerprint`](crate::fingerprint::model_fingerprint)),
    /// computed from the compiled model's predictions on the pinned probe
    /// corpus over this instruction set.
    pub fn fingerprint(&self) -> u64 {
        use crate::compiled::KernelLoad;
        self.compile().fingerprint(self.instructions.len())
    }

    /// Saves the artifact plus a fingerprint sidecar (`<path>.fp`),
    /// returning the recorded fingerprint.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from either write.
    pub fn save_with_fingerprint(&self, path: impl AsRef<Path>) -> Result<u64, ArtifactError> {
        let path = path.as_ref();
        self.save(path)?;
        let fp = self.fingerprint();
        crate::fingerprint::write_sidecar(path, fp)?;
        Ok(fp)
    }
}

/// The `PALMED-DISJ v1` codec, as the registry's sniff table sees it.
pub(crate) struct DisjCodec;

impl ArtifactCodec for DisjCodec {
    const KIND: ModelKind = ModelKind::DisjunctiveV1;
    const MAGIC: &'static [u8] = DISJ_MAGIC;
    type Artifact = DisjArtifact;

    fn encode(artifact: &DisjArtifact) -> Vec<u8> {
        encode(artifact)
    }

    fn decode(bytes: &[u8]) -> Result<DisjArtifact, ArtifactError> {
        decode(bytes)
    }
}

/// Layout (all integers little-endian):
///
/// ```text
/// magic         "PALMED-DISJ v1\n"                        15 bytes
/// machine       u32 len + UTF-8 bytes
/// source        u32 len + UTF-8 bytes
/// num_ports     u32, 1..=16
/// instructions  u32 n; n × { u32 len + name, u8 class, u8 extension }
/// row slots     u32 s (last trained instruction index + 1)
/// uop_ptr       (s + 1) × u32, monotone, ending at total; last slot trained
/// total         u32
/// masks         total × u32, non-zero, < 2^num_ports
/// weights       total × u64 (f64 bits), finite and > 0
/// checksum      u64, FNV-1a 64 over 8-byte LE words of all preceding bytes
/// ```
fn encode(artifact: &DisjArtifact) -> Vec<u8> {
    let compiled = artifact.compile();
    let mut out = Vec::with_capacity(64 + 16 * compiled.masks.len());
    out.extend_from_slice(DISJ_MAGIC);
    push_str(&mut out, &token(&artifact.machine));
    push_str(&mut out, &token(&artifact.source));
    push_u32(&mut out, artifact.num_ports);

    crate::codec::write_instruction_table(&mut out, &artifact.instructions);

    push_u32(&mut out, (compiled.uop_ptr.len() - 1) as u32);
    for &p in &compiled.uop_ptr {
        push_u32(&mut out, p);
    }
    push_u32(&mut out, compiled.masks.len() as u32);
    for &m in &compiled.masks {
        push_u32(&mut out, m);
    }
    for &w in &compiled.weights {
        push_f64(&mut out, w);
    }

    finish_trailer(out)
}

fn decode(bytes: &[u8]) -> Result<DisjArtifact, ArtifactError> {
    let body = crate::codec::verify_for::<DisjCodec>(bytes)?;

    let mut cur = Cursor::after_magic(body, DISJ_MAGIC);
    let machine = cur.token("machine name")?.to_string();
    let source = cur.token("source name")?.to_string();
    let num_ports = cur.u32("port count")?;
    if !(1..=MAX_DISJ_PORTS).contains(&num_ports) {
        return Err(cur.bad(format!("port count {num_ports} outside 1..={MAX_DISJ_PORTS}")));
    }

    // Instruction inventory — the identical shared section of the v2b
    // validator.
    let instructions = crate::codec::read_instruction_table(&mut cur)?;
    let n_insts = instructions.len();

    // µOP arrays: lengths validated against the remaining byte budget by the
    // cursor before anything is read past.
    let slots = cur.u32("row slot count")? as usize;
    if slots > n_insts {
        return Err(cur.bad(format!("{slots} row slots exceed {n_insts} instructions")));
    }
    let (uop_ptr, total) =
        crate::codec::read_csr_ptr(&mut cur, bytes, slots, "uop_ptr", "µOP count")?;
    if slots > 0 && u32_at(bytes, &uop_ptr, slots - 1) as usize == total {
        return Err(cur.bad("last row slot is untrained (slot table is not minimal)"));
    }
    let masks_len =
        total.checked_mul(4).ok_or_else(|| cur.bad("mask count overflows".to_string()))?;
    let masks = cur.take_range(masks_len, "masks")?;
    let weights_len =
        total.checked_mul(8).ok_or_else(|| cur.bad("weight count overflows".to_string()))?;
    let weights = cur.take_range(weights_len, "weights")?;
    if !cur.done() {
        return Err(cur.bad("trailing bytes after the µOP arrays"));
    }
    for i in 0..total {
        let mask = u32_at(bytes, &masks, i);
        if mask == 0 || mask >= (1 << num_ports) {
            return Err(cur.bad(format!("µOP mask {mask:#b} is empty or exceeds {num_ports} ports")));
        }
        let weight = f64_at(bytes, &weights, i);
        if !weight.is_finite() || weight <= 0.0 {
            return Err(cur.bad(format!("µOP weight {weight} is not finite and positive")));
        }
    }

    // Materialise the rows (disjunctive models are small; no deferred form).
    let mut rows: Vec<(InstId, Vec<DisjUop>)> = Vec::with_capacity(slots.min(1 << 16));
    for slot in 0..slots {
        let (start, end) =
            (u32_at(bytes, &uop_ptr, slot) as usize, u32_at(bytes, &uop_ptr, slot + 1) as usize);
        if start == end {
            continue;
        }
        let uops = (start..end)
            .map(|e| DisjUop { mask: u32_at(bytes, &masks, e), weight: f64_at(bytes, &weights, e) })
            .collect();
        rows.push((InstId(slot as u32), uops));
    }
    Ok(DisjArtifact { machine, source, instructions, num_ports, rows })
}

thread_local! {
    /// Reusable per-mask load accumulator for [`CompiledDisjModel::load_into`]
    /// (the fixed-size `scratch` holds per-subset results; the distinct-mask
    /// list is workload-dependent and tiny).
    static MASK_LOADS: RefCell<Vec<(u32, f64)>> = const { RefCell::new(Vec::new()) };
}

/// A disjunctive mapping flattened for serving: per-instruction µOP rows in
/// a CSR-style arena, predicting through the optimal fractional
/// port-assignment bound.
///
/// Implements [`KernelLoad`]: the scratch vector holds one entry per
/// non-empty subset of the abstract ports — the subset-confined load divided
/// by the subset width — so
/// [`execution_time_with`](KernelLoad::execution_time_with) (the scratch
/// maximum) is the disjunctive execution-time bound and every provided
/// combinator ([`ipc_with`](KernelLoad::ipc_with),
/// [`bottleneck_with`](KernelLoad::bottleneck_with)) works unchanged.  The
/// "resource" index space is the port subsets: `ResourceId(i)` is subset
/// mask `i + 1`.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledDisjModel {
    name: String,
    num_ports: u32,
    /// CSR row boundaries, one entry per instruction slot plus a sentinel.
    uop_ptr: Vec<u32>,
    /// Port mask of every µOP entry.
    masks: Vec<u32>,
    /// Weight (multiplicity × inverse throughput) of every µOP entry.
    weights: Vec<f64>,
}

impl CompiledDisjModel {
    /// Number of abstract ports.
    pub fn num_ports(&self) -> u32 {
        self.num_ports
    }

    /// Number of trained instructions.
    pub fn num_instructions(&self) -> usize {
        self.uop_ptr.windows(2).filter(|w| w[0] != w[1]).count()
    }

    /// Number of µOP entries across all rows.
    pub fn num_uops(&self) -> usize {
        self.masks.len()
    }
}

impl KernelLoad for CompiledDisjModel {
    fn num_resources(&self) -> usize {
        (1usize << self.num_ports) - 1
    }

    /// Writes the per-subset load bound of one kernel iteration into
    /// `scratch`.
    ///
    /// Phase 1 accumulates per-mask loads in first-occurrence order — the
    /// exact accumulation PMEvo's genome evaluation performs, so predictions
    /// stay bit-identical to the trainer.  Phase 2 sweeps every non-empty
    /// port subset, summing the loads confined to it (in that same
    /// first-occurrence order) and dividing by the subset width.
    fn load_into(&self, kernel: &Microkernel, scratch: &mut Vec<f64>) {
        scratch.clear();
        scratch.resize(self.num_resources(), 0.0);
        MASK_LOADS.with_borrow_mut(|loads| {
            loads.clear();
            for &(inst, count) in kernel.as_slice() {
                let index = inst.index();
                if index + 1 >= self.uop_ptr.len() {
                    continue;
                }
                let (start, end) =
                    (self.uop_ptr[index] as usize, self.uop_ptr[index + 1] as usize);
                let count = count as f64;
                for e in start..end {
                    let mask = self.masks[e];
                    let load = count * self.weights[e];
                    match loads.iter_mut().find(|(m, _)| *m == mask) {
                        Some((_, l)) => *l += load,
                        None => loads.push((mask, load)),
                    }
                }
            }
            for subset in 1u32..(1u32 << self.num_ports) {
                let confined: f64 =
                    loads.iter().filter(|(m, _)| m & !subset == 0).map(|&(_, l)| l).sum();
                scratch[(subset - 1) as usize] =
                    if confined > 0.0 { confined / subset.count_ones() as f64 } else { 0.0 };
            }
        });
    }
}

impl ThroughputPredictor for CompiledDisjModel {
    fn name(&self) -> &str {
        &self.name
    }

    fn supports(&self, inst: InstId) -> bool {
        let index = inst.index();
        index + 1 < self.uop_ptr.len() && self.uop_ptr[index] != self.uop_ptr[index + 1]
    }

    /// Trait-object entry point, backed by the shared thread-local scratch
    /// buffer so it stays allocation-free per call.
    fn predict_ipc(&self, kernel: &Microkernel) -> Option<f64> {
        LOAD_SCRATCH.with_borrow_mut(|scratch| self.ipc_with(kernel, scratch))
    }
}

#[cfg(test)]
pub(crate) mod tests_support {
    use super::*;

    /// A small disjunctive artifact shared by this module's and the
    /// registry's tests: three instructions over three abstract ports.
    pub(crate) fn example() -> DisjArtifact {
        let instructions = InstructionSet::paper_example();
        DisjArtifact::new(
            "skl-disj",
            "pmevo-test",
            instructions,
            3,
            vec![
                (InstId(0), vec![(0b001, 1.0), (0b110, 2.0)]),
                (InstId(2), vec![(0b011, 1.0)]),
                (InstId(3), vec![(0b111, 3.0)]),
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::tests_support::example;
    use super::*;

    #[test]
    fn render_parse_round_trip_is_exact() {
        let artifact = example();
        let bytes = artifact.render();
        let reloaded = DisjArtifact::parse(&bytes).unwrap();
        assert_eq!(reloaded, artifact);
        assert_eq!(reloaded.render(), bytes);
        assert_eq!(reloaded.num_ports(), 3);
        assert_eq!(reloaded.num_instructions(), 3);
        assert_eq!(reloaded.to_rows(), artifact.to_rows());
    }

    #[test]
    fn compiled_form_predicts_the_subset_bound() {
        let artifact = example();
        let model = artifact.compile();
        assert_eq!(model.num_resources(), 7);
        assert_eq!(model.num_instructions(), 3);
        assert_eq!(model.num_uops(), 4);
        assert!(model.supports(InstId(0)));
        assert!(!model.supports(InstId(1)));
        assert!(!model.supports(InstId(99)));

        // One instruction confined to port 0 with weight 1: t = 1, ipc = 1.
        let mut scratch = model.scratch();
        let k = Microkernel::single(InstId(2)); // mask 0b011, weight 1
        // Subset {0,1} carries load 1 over 2 ports; singletons carry none.
        let t = model.execution_time_with(&k, &mut scratch);
        assert!((t - 0.5).abs() < 1e-12, "t = {t}");
        let ipc = model.ipc_with(&k, &mut scratch).unwrap();
        assert!((ipc - 2.0).abs() < 1e-12, "ipc = {ipc}");

        // Unsupported-only kernels predict None.
        assert_eq!(model.predict_ipc(&Microkernel::single(InstId(1))), None);
    }

    #[test]
    fn round_tripped_model_predicts_bit_identically() {
        let artifact = example();
        let reloaded = DisjArtifact::parse(&artifact.render()).unwrap();
        let (fresh, loaded) = (artifact.compile(), reloaded.compile());
        let mut s1 = fresh.scratch();
        let mut s2 = loaded.scratch();
        for k in [
            Microkernel::single(InstId(0)),
            Microkernel::pair(InstId(0), 3, InstId(2), 2),
            Microkernel::pair(InstId(2), 1, InstId(3), 5),
            Microkernel::single(InstId(1)),
        ] {
            assert_eq!(
                fresh.ipc_with(&k, &mut s1).map(f64::to_bits),
                loaded.ipc_with(&k, &mut s2).map(f64::to_bits),
                "kernel {k}"
            );
        }
    }

    #[test]
    fn corruption_truncation_and_wrong_kind_are_rejected() {
        let bytes = example().render();
        for cut in 0..bytes.len() {
            assert!(DisjArtifact::parse(&bytes[..cut]).is_err(), "truncation at {cut} parsed");
        }
        let mut corrupt = bytes.clone();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0x08;
        assert!(DisjArtifact::parse(&corrupt).is_err());
        // A conjunctive buffer is a kind error, not a parse error.
        let conj = crate::artifact::tests_support::example().render_v2();
        match DisjArtifact::parse(&conj) {
            Err(ArtifactError::WrongKind { expected, found }) => {
                assert_eq!(expected, ModelKind::DisjunctiveV1);
                assert_eq!(found, ModelKind::ConjunctiveV2b);
            }
            other => panic!("expected WrongKind, got {other:?}"),
        }
    }

    #[test]
    fn crafted_structural_violations_are_rejected() {
        // Rehash after each mutation: the trailer is integrity, not
        // authentication, so structural checks must hold on their own.
        let valid = example().render();
        let body = &valid[..valid.len() - 8];
        let rehash = |b: &[u8]| finish_trailer(b.to_vec());
        // Port count beyond the cap.
        let mut huge_ports = body.to_vec();
        let at = DISJ_MAGIC.len() + 4 + "skl-disj".len() + 4 + "pmevo-test".len();
        huge_ports[at..at + 4].copy_from_slice(&999u32.to_le_bytes());
        assert!(matches!(
            DisjArtifact::parse(&rehash(&huge_ports)),
            Err(ArtifactError::MalformedBinary { .. })
        ));
        // Truncated body with a fresh checksum.
        assert!(matches!(
            DisjArtifact::parse(&rehash(&body[..body.len() - 4])),
            Err(ArtifactError::MalformedBinary { .. })
        ));
        // Trailing garbage.
        let mut padded = body.to_vec();
        padded.extend_from_slice(&[0u8; 2]);
        assert!(matches!(
            DisjArtifact::parse(&rehash(&padded)),
            Err(ArtifactError::MalformedBinary { .. })
        ));
    }

    #[test]
    fn save_and_load_through_the_filesystem() {
        let artifact = example();
        let path = std::env::temp_dir().join("palmed-serve-disj-test.palmeddisj");
        artifact.save(&path).unwrap();
        let loaded = DisjArtifact::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded, artifact);
    }

    #[test]
    #[should_panic(expected = "row references")]
    fn artifact_requires_a_covering_instruction_set() {
        DisjArtifact::new(
            "m",
            "s",
            InstructionSet::paper_example(),
            3,
            vec![(InstId(99), vec![(0b1, 1.0)])],
        );
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn artifact_rejects_masks_beyond_the_port_count() {
        DisjArtifact::new(
            "m",
            "s",
            InstructionSet::paper_example(),
            2,
            vec![(InstId(0), vec![(0b100, 1.0)])],
        );
    }
}
