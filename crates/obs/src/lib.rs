//! `palmed-obs`: a zero-dependency observability layer for the PALMED
//! stack — lock-free metrics (counters, gauges, log2 histograms) behind a
//! global named registry, plus a lightweight span/event layer draining
//! per-thread ring buffers into a structured JSONL log.
//!
//! Hand-rolled under the same offline discipline as `palmed-par` and the
//! serve crate's mmap shim: no external crates, `std` atomics and locks
//! only.
//!
//! # Gating
//!
//! Everything is off by default.  [`set_enabled`]`(true)` arms the layer
//! process-wide; until then every instrumentation site is a single relaxed
//! atomic load — the call-site cells created by [`counter!`], [`gauge!`]
//! and [`histogram!`] do not even *register* their metric (no allocation,
//! no lock) while disabled, [`event!`] does not build its field list, and
//! [`span`] does not read the clock.  `PALMED_OBS=1` in the environment
//! also enables it at first use, so binaries need no plumbing.
//!
//! # Usage
//!
//! ```
//! palmed_obs::set_enabled(true);
//! palmed_obs::counter!("demo.requests").inc();
//! let timer = palmed_obs::start_timer();
//! // ... the work being timed ...
//! palmed_obs::histogram!("demo.latency_ns").record_elapsed(timer);
//! palmed_obs::event!("demo.done", ok = true, n = 3u64);
//!
//! let snapshot = palmed_obs::snapshot();
//! assert_eq!(snapshot.counter("demo.requests"), Some(1));
//! let (events, _dropped) = palmed_obs::drain_events();
//! assert!(events.iter().any(|e| e.name == "demo.done"));
//! # palmed_obs::set_enabled(false);
//! ```
//!
//! # Metric reference
//!
//! Names recorded by the instrumented crates (`lp`, `core`, `serve`,
//! `eval`, `fuzz`).  C = counter, G = gauge, H = histogram (nanoseconds
//! unless noted).
//!
//! | Name | Kind | Meaning |
//! |------|------|---------|
//! | `lp.simplex.solves` | C | revised-simplex solves completed |
//! | `lp.simplex.failures` | C | solves that returned an error |
//! | `lp.simplex.iterations` | C | simplex pivots across all solves |
//! | `lp.simplex.refactorizations` | C | basis refactorizations |
//! | `lp.simplex.warm_start.hits` | C | warm bases adopted successfully |
//! | `lp.simplex.warm_start.misses` | C | warm bases rejected (fell back cold) |
//! | `lp.simplex.cold_starts` | C | solves started from a cold basis |
//! | `lp.milp.nodes` | C | branch-and-bound nodes explored |
//! | `trainer.benchmarks` | C | benchmark instances fed to the pipeline |
//! | `trainer.lp2.rounds` | C | LP2 alternation rounds executed |
//! | `span.trainer.select` | H | Phase 1 campaign/selection duration |
//! | `span.trainer.lp1` | H | LP1 shape-discovery duration |
//! | `span.trainer.lp2` | H | LP2 bipartite-weight solve duration |
//! | `span.trainer.lpaux` | H | LPAUX mapping-completion duration |
//! | `serve.batch.requests` | C | `BatchPredictor::serve` calls |
//! | `serve.batch.inputs` | C | input slots served (pre-dedup) |
//! | `serve.batch.distinct` | C | distinct kernels actually predicted |
//! | `serve.batch.dedup_hits` | C | inputs answered by dedup (`inputs − distinct`) |
//! | `serve.batch.serve_ns` | H | wall time of each serve call |
//! | `serve.ingest.prepared_batches` | C | `PreparedBatch` constructions |
//! | `serve.registry.installs` | C | models installed into a registry |
//! | `serve.registry.swaps` | C | generation-bumping snapshot swaps |
//! | `serve.registry.reloads` | C | successful file reloads |
//! | `serve.registry.readmits` | C | quarantined entries readmitted |
//! | `serve.registry.removes` | C | entries removed |
//! | `serve.registry.torn_read_retries` | C | stable-read retries after torn reads |
//! | `serve.registry.refresh.polls` | C | per-entry refresh inspections |
//! | `serve.registry.refresh.reloaded` | C | refreshes that picked up a new file |
//! | `serve.registry.refresh.errors` | C | refreshes that failed to reload |
//! | `serve.registry.refresh.backed_off` | C | polls skipped inside backoff |
//! | `serve.registry.refresh.quarantined` | C | polls skipped while quarantined |
//! | `serve.registry.entries` | G | entries in the current snapshot |
//! | `wire.connections` | C | wire connections opened |
//! | `wire.requests` | C | request/admin frames accepted in-flight |
//! | `wire.responses` | C | response/admin-response frames written |
//! | `wire.errors` | C | structured error frames written |
//! | `wire.shed.busy` | C | frames shed with `server-busy` at the in-flight cap |
//! | `wire.poisoned` | C | connections poisoned by a malformed frame |
//! | `wire.timeouts.deadline` | C | partial frames that hit the receive deadline |
//! | `wire.timeouts.idle` | C | connections closed by the idle timeout |
//! | `wire.timeouts.write_stall` | C | connections closed because their write backlog made no progress |
//! | `wire.request_ns` | H | wall time from accepted request to queued reply |
//! | `wire.batch.coalesced_requests` | C | prediction requests answered by a shared-batcher round |
//! | `wire.batch.distinct_kernels` | C | distinct kernels evaluated across batch serves |
//! | `wire.batch.snapshot_pins` | C | registry entries pinned (one resolve per model per round) |
//! | `wire.batch.corpus_cache_hits` | C | request corpora answered from the parse cache |
//! | `wire.batch.batch_ns` | H | wall time of each entry group's batch serve |
//! | `wire.frontend.wakeups` | C | front-end readiness wakeups (`poll`/`epoll_wait` returns) |
//! | `wire.frontend.pumps` | C | connection pumps run — per wakeup, poll walks every fd, epoll only the ready ones |
//! | `eval.machines` | C | campaign machines evaluated |
//! | `eval.suites` | C | benchmark suites scored |
//! | `eval.blocks` | C | basic blocks scored across suites |
//! | `span.eval.machine` | H | one machine's full campaign duration |
//! | `fuzz.cases` | C | fuzz cases executed |
//! | `fuzz.accepted` | C | cases every decoder accepted |
//! | `fuzz.rejected` | C | cases rejected with a structured error |
//! | `fuzz.reject.<class>` | C | rejections by [`class`] (e.g. `checksum-mismatch`) |
//! | `fuzz.case_ns.<format>` | H | per-case duration by format (e.g. `model-v2b`) |
//!
//! [`class`]: https://docs.rs/palmed-serve (ArtifactError::class / CorpusError::class)
//!
//! # Event reference
//!
//! | Event | Fields | Emitted when |
//! |-------|--------|--------------|
//! | `span` | `span`, `ns` | a scoped span closes |
//! | `trainer.mapping_inferred` | `benchmarks`, `kernels` | `infer_subset` completes |
//! | `registry.install` | `key`, `generation` | a model is installed |
//! | `registry.swap` | `key`, `generation` | bytes hot-swapped over an entry |
//! | `registry.reload` | `key`, `generation` | a file reload succeeds |
//! | `registry.reload_failed` | `key`, `class`, `error` | a reload attempt fails |
//! | `registry.backoff` | `key`, `failures`, `backoff_polls` | failure schedules backoff |
//! | `registry.quarantine` | `key`, `failures` | an entry crosses the quarantine threshold |
//! | `registry.readmit` | `key` | `readmit` clears quarantine |
//! | `registry.torn_read_retry` | `path`, `attempt` | a stable read observes a torn file |
//! | `registry.remove` | `key` | an entry is removed |
//!
//! Snapshots render via [`Snapshot::render_prometheus`] /
//! [`Snapshot::render_json`]; events via [`events_to_jsonl`].  Both are
//! deterministic for fixed values (name-sorted maps, sequence-ordered
//! events).

mod metrics;
mod span;

pub use metrics::{
    counter, gauge, global, histogram, snapshot, start_timer, Counter, CounterCell, Gauge,
    GaugeCell, Histogram, HistogramCell, HistogramSnapshot, Metric, Registry, Snapshot,
    HISTOGRAM_BUCKETS,
};
pub use span::{
    drain_events, emit, events_to_jsonl, span, Event, FieldValue, Span, RING_CAPACITY,
};

use std::sync::atomic::{AtomicU8, Ordering};

// 0 = unresolved (consult PALMED_OBS on first read), 1 = off, 2 = on.
static ENABLED: AtomicU8 = AtomicU8::new(0);

/// True when the observability layer is armed.  This is the single gate
/// every instrumentation site checks; it is one relaxed atomic load on
/// every call after the first.
#[inline]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => resolve_from_env(),
    }
}

#[cold]
fn resolve_from_env() -> bool {
    let on = matches!(std::env::var("PALMED_OBS").as_deref(), Ok("1") | Ok("true") | Ok("on"));
    // Keep the first resolution even if another thread raced us; both read
    // the same environment, so the answer is identical.
    ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    on
}

/// Arms (`true`) or disarms (`false`) the layer process-wide, overriding
/// `PALMED_OBS`.  Metrics registered while enabled keep their values when
/// disarmed; they just stop updating.
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Declares a call-site [`CounterCell`] for a `&'static str` name and
/// returns `&'static CounterCell`.  The underlying metric is registered on
/// first *enabled* use; while disabled the cell is a single flag check.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static CELL: $crate::CounterCell = $crate::CounterCell::new($name);
        &CELL
    }};
}

/// Declares a call-site [`GaugeCell`] (see [`counter!`]).
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static CELL: $crate::GaugeCell = $crate::GaugeCell::new($name);
        &CELL
    }};
}

/// Declares a call-site [`HistogramCell`] (see [`counter!`]).
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static CELL: $crate::HistogramCell = $crate::HistogramCell::new($name);
        &CELL
    }};
}

/// Emits a structured [`Event`] with `key = value` fields, e.g.
/// `event!("registry.swap", key = key, generation = generation)`.  Values
/// go through [`FieldValue::from`]; nothing (including the field vector)
/// is built while observability is disabled.
#[macro_export]
macro_rules! event {
    ($name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::emit(
                $name,
                vec![$((stringify!($key), $crate::FieldValue::from($value))),*],
            );
        }
    };
}

/// Serialises unit tests that flip the global enabled flag; the harness
/// runs tests in parallel threads within one process.
#[cfg(test)]
pub(crate) fn test_flag_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    #[test]
    fn cells_register_lazily_and_macros_expand() {
        let _guard = crate::test_flag_lock();
        // Run with the flag off first: nothing registers.
        crate::set_enabled(false);
        counter!("lib.test.counter").inc();
        gauge!("lib.test.gauge").set(1.0);
        histogram!("lib.test.histogram").record(9);
        let snapshot = crate::snapshot();
        assert_eq!(snapshot.counter("lib.test.counter"), None);
        assert_eq!(snapshot.gauge("lib.test.gauge"), None);
        assert!(snapshot.histogram("lib.test.histogram").is_none());

        // Flag on: same cells now register and record.
        crate::set_enabled(true);
        let c = counter!("lib.test.counter");
        c.inc();
        c.add(2);
        gauge!("lib.test.gauge").set(1.5);
        histogram!("lib.test.histogram").record(9);
        let timer = crate::start_timer();
        histogram!("lib.test.histogram").record_elapsed(timer);
        let snapshot = crate::snapshot();
        assert_eq!(snapshot.counter("lib.test.counter"), Some(3));
        assert_eq!(snapshot.gauge("lib.test.gauge"), Some(1.5));
        assert_eq!(snapshot.histogram("lib.test.histogram").map(|h| h.count), Some(2));
        crate::set_enabled(false);
    }
}
