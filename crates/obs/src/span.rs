//! The span/event layer: structured events collected into per-thread ring
//! buffers, plus scoped spans that time a section and emit both a
//! histogram sample and a completion event.
//!
//! Each thread that emits events owns a fixed-capacity ring buffer
//! (capacity [`RING_CAPACITY`]); a global list of weak-ish handles lets
//! [`drain_events`] collect every thread's buffered events into one
//! sequence-ordered log.  Rings drop their **oldest** event when full and
//! count the drops, so a stalled drainer degrades to losing history, never
//! to blocking or unbounded memory.
//!
//! Like the metrics core, everything here is gated on the global
//! [`enabled`](crate::enabled) flag: while it is off, [`emit`] is a single
//! relaxed load and a [`Span`] holds no clock stamp — no allocation, no
//! lock, no time syscall.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::metrics::{json_f64, json_string};

/// Capacity of each thread's event ring.  Power of two, large enough to
/// hold a full registry incident (a few dozen events) hundreds of times
/// over, small enough that idle threads cost ~1 MiB worst case.
pub const RING_CAPACITY: usize = 4096;

/// A field value attached to an [`Event`].
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Owned string (error messages, paths, keys).
    Str(String),
}

impl FieldValue {
    fn render_json(&self) -> String {
        match self {
            FieldValue::U64(v) => v.to_string(),
            FieldValue::I64(v) => v.to_string(),
            FieldValue::F64(v) => json_f64(*v),
            FieldValue::Bool(v) => v.to_string(),
            FieldValue::Str(v) => json_string(v),
        }
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// One structured event: a name, a global sequence number, and a small set
/// of key/value fields.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Process-global, strictly increasing assignment order.  Events from
    /// different threads interleave in `seq` order, which is the order
    /// [`drain_events`] returns.
    pub seq: u64,
    /// Dot-separated event name, e.g. `registry.quarantine`.
    pub name: &'static str,
    /// Key/value payload, in emission order.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl Event {
    /// The value of field `key`, if present.
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Renders the event as one JSON object (one JSONL line, no newline).
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\"seq\":{},\"event\":{}", self.seq, json_string(self.name));
        for (key, value) in &self.fields {
            let _ = write!(out, ",{}:{}", json_string(key), value.render_json());
        }
        out.push('}');
        out
    }
}

/// A fixed-capacity drop-oldest ring of events.
#[derive(Debug)]
struct Ring {
    events: std::collections::VecDeque<Event>,
    dropped: u64,
}

impl Ring {
    fn new() -> Self {
        Ring { events: std::collections::VecDeque::with_capacity(RING_CAPACITY), dropped: 0 }
    }

    fn push(&mut self, event: Event) {
        if self.events.len() == RING_CAPACITY {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }
}

/// The global list of per-thread rings.  Rings are registered once per
/// thread and never removed: a dead thread's remaining events stay
/// drainable, and the handle is two words.
fn rings() -> &'static Mutex<Vec<Arc<Mutex<Ring>>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<Mutex<Ring>>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

fn next_seq() -> u64 {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    SEQ.fetch_add(1, Ordering::Relaxed)
}

thread_local! {
    static LOCAL_RING: Arc<Mutex<Ring>> = {
        let ring = Arc::new(Mutex::new(Ring::new()));
        rings().lock().expect("ring list lock").push(Arc::clone(&ring));
        ring
    };
}

/// Emits one structured event into the current thread's ring, if
/// observability is enabled.  Prefer the [`event!`](crate::event!) macro,
/// which also skips *building* the field vector while disabled.
pub fn emit(name: &'static str, fields: Vec<(&'static str, FieldValue)>) {
    if !crate::enabled() {
        return;
    }
    let event = Event { seq: next_seq(), name, fields };
    LOCAL_RING.with(|ring| ring.lock().expect("ring lock").push(event));
}

/// Drains every thread's buffered events, returning them in global
/// sequence order.  Also returns the number of events lost to ring
/// overflow since the last drain.
pub fn drain_events() -> (Vec<Event>, u64) {
    let handles: Vec<Arc<Mutex<Ring>>> =
        rings().lock().expect("ring list lock").iter().map(Arc::clone).collect();
    let mut events = Vec::new();
    let mut dropped = 0;
    for handle in handles {
        let mut ring = handle.lock().expect("ring lock");
        events.extend(ring.events.drain(..));
        dropped += ring.dropped;
        ring.dropped = 0;
    }
    events.sort_by_key(|e| e.seq);
    (events, dropped)
}

/// Renders events as JSONL: one [`Event::render_json`] object per line.
pub fn events_to_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for event in events {
        out.push_str(&event.render_json());
        out.push('\n');
    }
    out
}

/// A scoped span: times a section and, on drop, records the elapsed
/// nanoseconds into the `span.<name>` histogram and emits a `span.<name>`
/// event carrying `ns`.  Created by [`span`]; while observability is
/// disabled the guard is inert (no clock read, nothing recorded).
#[derive(Debug)]
#[must_use = "a span measures the scope it is bound to; dropping it immediately measures nothing"]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
}

impl Span {
    /// Nanoseconds elapsed so far (`None` while disabled).
    pub fn elapsed_ns(&self) -> Option<u64> {
        self.start.map(|s| u64::try_from(s.elapsed().as_nanos()).unwrap_or(u64::MAX))
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            // `leak`-free &'static name: span names are compile-time
            // literals, so the histogram name is built once per distinct
            // span name and cached in the global registry by string key.
            crate::metrics::global().histogram(&format!("span.{}", self.name)).record(ns);
            emit_span_event(self.name, ns);
        }
    }
}

fn emit_span_event(name: &'static str, ns: u64) {
    if !crate::enabled() {
        return;
    }
    let event = Event {
        seq: next_seq(),
        name: "span",
        fields: vec![("span", FieldValue::Str(name.to_string())), ("ns", FieldValue::U64(ns))],
    };
    LOCAL_RING.with(|ring| ring.lock().expect("ring lock").push(event));
}

/// Opens a scoped span named `name`.  Bind the result (`let _span = ...`);
/// it records on drop.
#[inline]
pub fn span(name: &'static str) -> Span {
    Span { name, start: if crate::enabled() { Some(Instant::now()) } else { None } }
}

#[cfg(test)]
mod tests {
    use super::*;

    // These tests flip the global flag; keep them in one #[test] body so
    // the harness can run other modules' tests in parallel safely.
    #[test]
    fn events_spans_and_drain() {
        let _guard = crate::test_flag_lock();
        crate::set_enabled(true);

        emit("test.start", vec![("n", FieldValue::U64(7))]);
        {
            let _span = span("test.section");
            std::hint::black_box(0u64);
        }
        emit("test.end", vec![("ok", FieldValue::Bool(true))]);

        let (events, dropped) = drain_events();
        assert_eq!(dropped, 0);
        let names: Vec<&str> = events.iter().map(|e| e.name).collect();
        assert_eq!(names, ["test.start", "span", "test.end"]);
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(events[0].field("n"), Some(&FieldValue::U64(7)));
        match events[1].field("span") {
            Some(FieldValue::Str(s)) => assert_eq!(s, "test.section"),
            other => panic!("span field missing: {other:?}"),
        }

        let jsonl = events_to_jsonl(&events);
        assert_eq!(jsonl.lines().count(), 3);
        assert!(jsonl.contains("\"event\":\"test.start\""));
        assert!(jsonl.contains("\"n\":7"));

        // The span recorded a histogram sample too.
        let snapshot = crate::metrics::snapshot();
        assert_eq!(snapshot.histogram("span.test.section").map(|h| h.count), Some(1));

        // A second drain is empty.
        assert!(drain_events().0.is_empty());

        // Ring overflow drops oldest and counts.
        for i in 0..(RING_CAPACITY as u64 + 10) {
            emit("test.flood", vec![("i", FieldValue::U64(i))]);
        }
        let (events, dropped) = drain_events();
        assert_eq!(events.len(), RING_CAPACITY);
        assert_eq!(dropped, 10);
        assert_eq!(events[0].field("i"), Some(&FieldValue::U64(10)));

        crate::set_enabled(false);
        emit("test.after-disable", vec![]);
        assert!(drain_events().0.is_empty());
    }
}
