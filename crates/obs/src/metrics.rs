//! The lock-free metrics core: counters, gauges and log2-bucketed
//! histograms behind a named registry.
//!
//! The primitive types ([`Counter`], [`Gauge`], [`Histogram`]) are plain
//! atomics and record **unconditionally** — they carry no global-toggle
//! logic, so tests can hammer them directly and assert exact totals.  The
//! global-toggle gating lives one layer up, in the call-site cells
//! ([`CounterCell`], [`GaugeCell`], [`HistogramCell`]) the `counter!` /
//! `gauge!` / `histogram!` macros expand to: while
//! [`enabled`](crate::enabled) is false those are a single relaxed atomic
//! load — no registration, no allocation, no atomic write.
//!
//! A [`Registry`] is a named table of metrics; [`Registry::snapshot`]
//! copies the current values into an immutable [`Snapshot`] that renders as
//! Prometheus text or JSON.  Lookup-or-insert takes a short `RwLock` write;
//! updates after that touch only the metric's own atomics.  Hot paths
//! resolve their metric once through a call-site cell and never look it up
//! again.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Self {
        Counter { value: AtomicU64::new(0) }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instantaneous value (stored as `f64` bits).
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge::new()
    }
}

impl Gauge {
    /// A gauge at `0.0`.
    pub const fn new() -> Self {
        Gauge { bits: AtomicU64::new(0) }
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Adds `delta` (compare-and-swap loop; gauges are low-frequency).
    pub fn add(&self, delta: f64) {
        let mut current = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + delta).to_bits();
            match self.bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Number of log2 buckets a [`Histogram`] holds: bucket `i` counts values
/// whose bit length is `i` (bucket 0 holds exactly the value 0), so bucket
/// `i > 0` covers `2^(i-1) ..= 2^i - 1` and the histogram spans the full
/// `u64` range with no "overflow" bucket.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A lock-free log2-bucketed histogram of `u64` samples (latencies in
/// nanoseconds, sizes, counts).
///
/// Recording is three relaxed atomic RMWs (bucket, count+sum) plus a
/// relaxed max update; there is no lock anywhere.  Bucket boundaries are
/// powers of two, which is exactly the resolution latency triage needs and
/// makes the bucket index one `leading_zeros` instruction.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// The bucket index of a value: its bit length.
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// The inclusive upper bound of bucket `i` (`0`, `1`, `3`, `7`, ...).
    pub fn bucket_bound(i: usize) -> u64 {
        if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds (saturating past ~584 years).
    #[inline]
    pub fn record_duration(&self, duration: std::time::Duration) {
        self.record(u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Copies the current state out.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
        }
    }
}

/// An immutable copy of one histogram's state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Per-bucket counts, indexed by bit length ([`HISTOGRAM_BUCKETS`]
    /// entries).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// An upper bound on the `q`-quantile (`0.0 ..= 1.0`): the inclusive
    /// bound of the first bucket whose cumulative count reaches `q`.
    pub fn quantile_bound(&self, q: f64) -> u64 {
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= target.max(1) {
                return Histogram::bucket_bound(i);
            }
        }
        Histogram::bucket_bound(HISTOGRAM_BUCKETS - 1)
    }
}

/// One registered metric.
#[derive(Debug, Clone)]
pub enum Metric {
    /// A [`Counter`].
    Counter(Arc<Counter>),
    /// A [`Gauge`].
    Gauge(Arc<Gauge>),
    /// A [`Histogram`].
    Histogram(Arc<Histogram>),
}

/// A named table of metrics.  [`global`] is the process-wide instance every
/// instrumentation site records into; tests build private registries for
/// isolation.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: RwLock<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Looks up or registers the counter `name`.  If the name is already
    /// taken by a different metric kind, a detached (unregistered) counter
    /// is returned so instrumentation never panics; that is a programming
    /// error a debug assertion flags.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        match self.lookup_or_insert(name, || Metric::Counter(Arc::new(Counter::new()))) {
            Metric::Counter(c) => c,
            other => {
                debug_assert!(false, "metric `{name}` is not a counter: {other:?}");
                Arc::new(Counter::new())
            }
        }
    }

    /// Looks up or registers the gauge `name` (same collision policy as
    /// [`Registry::counter`]).
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        match self.lookup_or_insert(name, || Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => g,
            other => {
                debug_assert!(false, "metric `{name}` is not a gauge: {other:?}");
                Arc::new(Gauge::new())
            }
        }
    }

    /// Looks up or registers the histogram `name` (same collision policy as
    /// [`Registry::counter`]).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        match self.lookup_or_insert(name, || Metric::Histogram(Arc::new(Histogram::new()))) {
            Metric::Histogram(h) => h,
            other => {
                debug_assert!(false, "metric `{name}` is not a histogram: {other:?}");
                Arc::new(Histogram::new())
            }
        }
    }

    fn lookup_or_insert(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        if let Some(found) = self.metrics.read().expect("metrics lock").get(name) {
            return found.clone();
        }
        let mut metrics = self.metrics.write().expect("metrics lock");
        metrics.entry(name.to_string()).or_insert_with(make).clone()
    }

    /// Copies every metric's current value into an immutable snapshot.
    pub fn snapshot(&self) -> Snapshot {
        let metrics = self.metrics.read().expect("metrics lock");
        let mut snapshot = Snapshot::default();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(c) => {
                    snapshot.counters.insert(name.clone(), c.get());
                }
                Metric::Gauge(g) => {
                    snapshot.gauges.insert(name.clone(), g.get());
                }
                Metric::Histogram(h) => {
                    snapshot.histograms.insert(name.clone(), h.snapshot());
                }
            }
        }
        snapshot
    }
}

/// The process-wide metric registry.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Shorthand for [`global`]`().counter(name)`.
pub fn counter(name: &str) -> Arc<Counter> {
    global().counter(name)
}

/// Shorthand for [`global`]`().gauge(name)`.
pub fn gauge(name: &str) -> Arc<Gauge> {
    global().gauge(name)
}

/// Shorthand for [`global`]`().histogram(name)`.
pub fn histogram(name: &str) -> Arc<Histogram> {
    global().histogram(name)
}

/// Shorthand for [`global`]`().snapshot()`.
pub fn snapshot() -> Snapshot {
    global().snapshot()
}

// ---------------------------------------------------------------------------
// Call-site cells: gated, lazily registered metric handles.
// ---------------------------------------------------------------------------

/// A call-site counter handle: registers in the global registry on first
/// *enabled* use and is a pure flag check while observability is off.
/// Create through the [`counter!`](crate::counter!) macro.
#[derive(Debug)]
pub struct CounterCell {
    name: &'static str,
    cell: OnceLock<Arc<Counter>>,
}

impl CounterCell {
    /// A dormant cell for the metric `name`.
    pub const fn new(name: &'static str) -> Self {
        CounterCell { name, cell: OnceLock::new() }
    }

    /// Adds one, if observability is enabled.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`, if observability is enabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.cell.get_or_init(|| counter(self.name)).add(n);
        }
    }
}

/// A call-site gauge handle (see [`CounterCell`]).  Create through the
/// [`gauge!`](crate::gauge!) macro.
#[derive(Debug)]
pub struct GaugeCell {
    name: &'static str,
    cell: OnceLock<Arc<Gauge>>,
}

impl GaugeCell {
    /// A dormant cell for the metric `name`.
    pub const fn new(name: &'static str) -> Self {
        GaugeCell { name, cell: OnceLock::new() }
    }

    /// Sets the value, if observability is enabled.
    #[inline]
    pub fn set(&self, value: f64) {
        if crate::enabled() {
            self.cell.get_or_init(|| gauge(self.name)).set(value);
        }
    }

    /// Adds `delta`, if observability is enabled.
    #[inline]
    pub fn add(&self, delta: f64) {
        if crate::enabled() {
            self.cell.get_or_init(|| gauge(self.name)).add(delta);
        }
    }
}

/// A call-site histogram handle (see [`CounterCell`]).  Create through the
/// [`histogram!`](crate::histogram!) macro.
#[derive(Debug)]
pub struct HistogramCell {
    name: &'static str,
    cell: OnceLock<Arc<Histogram>>,
}

impl HistogramCell {
    /// A dormant cell for the metric `name`.
    pub const fn new(name: &'static str) -> Self {
        HistogramCell { name, cell: OnceLock::new() }
    }

    /// Records one sample, if observability is enabled.
    #[inline]
    pub fn record(&self, value: u64) {
        if crate::enabled() {
            self.cell.get_or_init(|| histogram(self.name)).record(value);
        }
    }

    /// Records the nanoseconds elapsed since a [`start_timer`] stamp.  A
    /// `None` stamp (observability was disabled at the start of the
    /// section) records nothing, so a section timed across an enable flip
    /// never records a half-measured value.
    #[inline]
    pub fn record_elapsed(&self, start: Option<Instant>) {
        if let Some(start) = start {
            if crate::enabled() {
                self.cell.get_or_init(|| histogram(self.name)).record_duration(start.elapsed());
            }
        }
    }
}

/// Stamps the start of a timed section: `Some(now)` while observability is
/// enabled, `None` (no clock read at all) otherwise.  Pair with
/// [`HistogramCell::record_elapsed`].
#[inline]
pub fn start_timer() -> Option<Instant> {
    if crate::enabled() {
        Some(Instant::now())
    } else {
        None
    }
}

// ---------------------------------------------------------------------------
// Snapshot + renderers.
// ---------------------------------------------------------------------------

/// An immutable copy of a registry's metrics, renderable as Prometheus text
/// or JSON.  Name-sorted maps make both renderings deterministic for fixed
/// values.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// The total of counter `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// The value of gauge `name`, if registered.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The state of histogram `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Counters whose name starts with `prefix`, in name order.
    pub fn counters_with_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, u64)> + 'a {
        self.counters
            .range(prefix.to_string()..)
            .take_while(move |(name, _)| name.starts_with(prefix))
            .map(|(name, &value)| (name.as_str(), value))
    }

    /// True when no metric is registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Renders the snapshot in the Prometheus text exposition format.
    /// Metric names are sanitised to `[a-zA-Z0-9_:]` (dots become
    /// underscores); histograms render as the conventional cumulative
    /// `_bucket{le="..."}` series plus `_sum` and `_count`, with one
    /// `le` line per *occupied* log2 bucket and the mandatory `+Inf`.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let name = prometheus_name(name);
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, value) in &self.gauges {
            let name = prometheus_name(name);
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, h) in &self.histograms {
            let name = prometheus_name(name);
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cumulative = 0u64;
            for (i, &n) in h.buckets.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                cumulative += n;
                let _ = writeln!(
                    out,
                    "{name}_bucket{{le=\"{}\"}} {cumulative}",
                    Histogram::bucket_bound(i)
                );
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{name}_sum {}", h.sum);
            let _ = writeln!(out, "{name}_count {}", h.count);
        }
        out
    }

    /// Renders the snapshot as one JSON object (hand-rolled; the vendored
    /// serde is a no-op shim).  Histogram buckets are `[bound, count]`
    /// pairs for the occupied buckets only.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{value}", json_string(name));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", json_string(name), json_f64(*value));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{}:{{\"count\":{},\"sum\":{},\"max\":{},\"buckets\":[",
                json_string(name),
                h.count,
                h.sum,
                h.max
            );
            let mut first = true;
            for (b, &n) in h.buckets.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, "[{},{n}]", Histogram::bucket_bound(b));
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }
}

/// Sanitises a metric name for the Prometheus exposition format.
fn prometheus_name(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == ':' { c } else { '_' })
        .collect()
}

/// Renders a JSON string literal with the escapes JSON requires.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders an `f64` as JSON (non-finite values become `null`).
pub(crate) fn json_f64(value: f64) -> String {
    if value.is_finite() {
        let mut s = format!("{value}");
        if !s.contains('.') && !s.contains('e') {
            s.push_str(".0");
        }
        s
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let g = Gauge::new();
        g.set(2.5);
        g.add(-0.5);
        assert_eq!(g.get(), 2.0);
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_bound(0), 0);
        assert_eq!(Histogram::bucket_bound(3), 7);
        assert_eq!(Histogram::bucket_bound(64), u64::MAX);

        let h = Histogram::new();
        for v in [0, 1, 2, 3, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1106);
        assert_eq!(s.max, 1000);
        assert_eq!(s.buckets[0], 1); // 0
        assert_eq!(s.buckets[1], 1); // 1
        assert_eq!(s.buckets[2], 2); // 2, 3
        assert_eq!(s.buckets[7], 1); // 100
        assert_eq!(s.buckets[10], 1); // 1000
        assert!(s.quantile_bound(0.5) <= 3);
        assert!(s.quantile_bound(1.0) >= 1000);
        assert!((s.mean() - 1106.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn registry_returns_the_same_metric_for_the_same_name() {
        let registry = Registry::new();
        let a = registry.counter("x.total");
        let b = registry.counter("x.total");
        a.inc();
        b.add(2);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(registry.snapshot().counter("x.total"), Some(3));
    }

    #[test]
    fn snapshot_renders_deterministically_and_sorted() {
        let registry = Registry::new();
        registry.counter("b.second").add(2);
        registry.counter("a.first").add(1);
        registry.gauge("g.level").set(0.5);
        registry.histogram("h.lat").record(5);
        let one = registry.snapshot();
        let two = registry.snapshot();
        assert_eq!(one, two);
        assert_eq!(one.render_prometheus(), two.render_prometheus());
        assert_eq!(one.render_json(), two.render_json());
        let prom = one.render_prometheus();
        let a = prom.find("a_first 1").expect("a.first rendered");
        let b = prom.find("b_second 2").expect("b.second rendered");
        assert!(a < b, "counters render in name order");
        assert!(prom.contains("h_lat_bucket{le=\"7\"} 1"));
        assert!(prom.contains("h_lat_bucket{le=\"+Inf\"} 1"));
        assert!(prom.contains("h_lat_sum 5"));
        let json = one.render_json();
        assert!(json.contains("\"a.first\":1"));
        assert!(json.contains("\"g.level\":0.5"));
        assert!(json.contains("\"h.lat\":{\"count\":1,\"sum\":5,\"max\":5,\"buckets\":[[7,1]]"));
    }

    #[test]
    fn prefix_queries_slice_the_counter_table() {
        let registry = Registry::new();
        registry.counter("p.a").add(1);
        registry.counter("p.b").add(2);
        registry.counter("q.c").add(3);
        let snapshot = registry.snapshot();
        let p: Vec<_> = snapshot.counters_with_prefix("p.").collect();
        assert_eq!(p, vec![("p.a", 1), ("p.b", 2)]);
    }

    #[test]
    fn json_escaping_is_correct() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_f64(1.0), "1.0");
        assert_eq!(json_f64(0.25), "0.25");
        assert_eq!(json_f64(f64::NAN), "null");
    }
}
