//! Synthetic benchmark suites.
//!
//! The paper extracts basic blocks from SPECint2017 (static binary analysis
//! plus performance counters) and PolyBench/C (QEMU translation blocks with
//! execution counts).  Neither source is redistributable, so this module
//! generates *synthetic* suites with the same statistical character:
//!
//! * **SPEC-like** — integer- and control-flow-heavy blocks: ALU operations,
//!   compares and branches, address arithmetic, scalar loads/stores, the
//!   occasional multiply / divide; a wide range of block sizes; heavy-tailed
//!   execution weights.
//! * **PolyBench-like** — floating-point loop kernels: SSE/AVX adds and
//!   multiplies (FMA-style), vector loads/stores, address computations
//!   (LEA), very few branches; blocks are dominated by a handful of hot
//!   kernels with very large weights (PolyBench spends almost all its time
//!   in a few loop nests).
//!
//! Generation is seeded and deterministic, so every figure of the evaluation
//! can be regenerated exactly.

use crate::blocks::BasicBlock;
use palmed_isa::{ExecClass, Extension, InstId, InstructionSet, Microkernel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which suite to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SuiteKind {
    /// Integer / control-flow heavy blocks (SPECint2017 stand-in).
    SpecLike,
    /// Floating-point loop kernels (PolyBench/C stand-in).
    PolybenchLike,
}

impl SuiteKind {
    /// Display name used in tables ("SPEC2017-like", "Polybench-like").
    pub fn name(self) -> &'static str {
        match self {
            SuiteKind::SpecLike => "SPEC2017-like",
            SuiteKind::PolybenchLike => "Polybench-like",
        }
    }

    /// Both suites, in the order of the paper's tables.
    pub const ALL: [SuiteKind; 2] = [SuiteKind::SpecLike, SuiteKind::PolybenchLike];

    /// Class-frequency profile of the suite: `(class, relative weight)`.
    fn profile(self) -> &'static [(ExecClass, f64)] {
        match self {
            SuiteKind::SpecLike => &[
                (ExecClass::IntAlu, 42.0),
                (ExecClass::Load, 18.0),
                (ExecClass::Store, 8.0),
                (ExecClass::Branch, 12.0),
                (ExecClass::Jump, 3.0),
                (ExecClass::Lea, 8.0),
                (ExecClass::IntMul, 3.0),
                (ExecClass::IntAluRestricted, 2.0),
                (ExecClass::IntDiv, 0.5),
                (ExecClass::FpAddSse, 1.5),
                (ExecClass::FpMulSse, 1.0),
                (ExecClass::VecAluSse, 1.0),
            ],
            SuiteKind::PolybenchLike => &[
                (ExecClass::FpAddSse, 14.0),
                (ExecClass::FpMulSse, 16.0),
                (ExecClass::FpAddAvx, 8.0),
                (ExecClass::FpMulAvx, 10.0),
                (ExecClass::VecAluSse, 4.0),
                (ExecClass::VecAluAvx, 3.0),
                (ExecClass::VecShuffleSse, 2.0),
                (ExecClass::VecCvtSse, 1.0),
                (ExecClass::Load, 14.0),
                (ExecClass::VecLoad, 6.0),
                (ExecClass::Store, 5.0),
                (ExecClass::VecStore, 3.0),
                (ExecClass::Lea, 8.0),
                (ExecClass::IntAlu, 9.0),
                (ExecClass::Branch, 2.0),
                (ExecClass::FpDivSse, 0.5),
            ],
        }
    }
}

/// Configuration of suite generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuiteConfig {
    /// Number of basic blocks to generate.
    pub num_blocks: usize,
    /// Minimum distinct instructions per block.
    pub min_distinct: usize,
    /// Maximum distinct instructions per block.
    pub max_distinct: usize,
    /// Maximum multiplicity of one instruction inside a block.
    pub max_multiplicity: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        SuiteConfig { num_blocks: 400, min_distinct: 2, max_distinct: 10, max_multiplicity: 4, seed: 2017 }
    }
}

impl SuiteConfig {
    /// A smaller configuration for unit tests.
    pub fn small(seed: u64) -> Self {
        SuiteConfig { num_blocks: 60, seed, ..SuiteConfig::default() }
    }
}

/// Generates a suite of weighted basic blocks for `insts`.
///
/// Blocks never mix SSE and AVX instructions (the same constraint the
/// paper's microbenchmark generator enforces); the generator picks the
/// vector flavour per block.
pub fn generate_suite(
    kind: SuiteKind,
    insts: &InstructionSet,
    config: &SuiteConfig,
) -> Vec<BasicBlock> {
    let mut rng = StdRng::seed_from_u64(config.seed ^ kind.name().len() as u64);
    let profile = kind.profile();

    // Candidate instructions per class (only classes present in the ISA).
    let per_class: Vec<(ExecClass, f64, Vec<InstId>)> = profile
        .iter()
        .map(|&(class, weight)| (class, weight, insts.ids_with_class(class)))
        .filter(|(_, _, ids)| !ids.is_empty())
        .collect();

    let mut blocks = Vec::with_capacity(config.num_blocks);
    for index in 0..config.num_blocks {
        // Pick the vector flavour of this block: SSE or AVX (never both).
        let allow_avx = rng.gen_bool(0.5);
        let allowed: Vec<(f64, &Vec<InstId>)> = per_class
            .iter()
            .filter(|(class, _, _)| match class.extension() {
                Extension::BaseIsa => true,
                Extension::Sse => !allow_avx,
                Extension::Avx => allow_avx,
            })
            .map(|(_, w, ids)| (*w, ids))
            .collect();
        let total_weight: f64 = allowed.iter().map(|(w, _)| w).sum();

        let distinct = rng.gen_range(config.min_distinct..=config.max_distinct);
        let mut kernel = Microkernel::new();
        for _ in 0..distinct {
            // Weighted class pick.
            let mut draw = rng.gen::<f64>() * total_weight;
            let mut chosen = &allowed[0];
            for entry in &allowed {
                if draw < entry.0 {
                    chosen = entry;
                    break;
                }
                draw -= entry.0;
            }
            let ids = chosen.1;
            let inst = ids[rng.gen_range(0..ids.len())];
            kernel.add(inst, rng.gen_range(1..=config.max_multiplicity));
        }
        if kernel.is_empty() {
            continue;
        }
        // Heavy-tailed execution weights; PolyBench-like blocks are even more
        // concentrated (a few loop nests dominate the runtime).
        let exponent = match kind {
            SuiteKind::SpecLike => rng.gen_range(0.0..4.0),
            SuiteKind::PolybenchLike => rng.gen_range(0.0..6.0),
        };
        let weight = 10f64.powf(exponent);
        blocks.push(BasicBlock::new(format!("{}/{index}", kind.name()), kernel, weight));
    }
    blocks
}

#[cfg(test)]
mod tests {
    use super::*;
    use palmed_isa::InventoryConfig;

    fn inventory() -> InstructionSet {
        InstructionSet::synthetic(&InventoryConfig::small())
    }

    #[test]
    fn generation_is_deterministic() {
        let insts = inventory();
        let a = generate_suite(SuiteKind::SpecLike, &insts, &SuiteConfig::small(1));
        let b = generate_suite(SuiteKind::SpecLike, &insts, &SuiteConfig::small(1));
        assert_eq!(a, b);
        let c = generate_suite(SuiteKind::SpecLike, &insts, &SuiteConfig::small(2));
        assert_ne!(a, c);
    }

    #[test]
    fn suites_have_the_requested_size_and_valid_blocks() {
        let insts = inventory();
        for kind in SuiteKind::ALL {
            let blocks = generate_suite(kind, &insts, &SuiteConfig::small(7));
            assert!(blocks.len() >= 55, "{} blocks", blocks.len());
            for b in &blocks {
                assert!(!b.kernel.is_empty());
                assert!(b.weight > 0.0);
                assert!(b.size() <= 10 * 4);
            }
        }
    }

    #[test]
    fn blocks_never_mix_sse_and_avx() {
        let insts = inventory();
        for kind in SuiteKind::ALL {
            for block in generate_suite(kind, &insts, &SuiteConfig::small(3)) {
                let has_sse = block
                    .kernel
                    .instructions()
                    .any(|i| insts.desc(i).extension == Extension::Sse);
                let has_avx = block
                    .kernel
                    .instructions()
                    .any(|i| insts.desc(i).extension == Extension::Avx);
                assert!(!(has_sse && has_avx), "mixed block: {}", block.render(&insts));
            }
        }
    }

    #[test]
    fn spec_like_is_integer_heavy_and_polybench_like_is_fp_heavy() {
        let insts = inventory();
        let count_fp = |blocks: &[BasicBlock]| -> f64 {
            let mut fp = 0u32;
            let mut total = 0u32;
            for b in blocks {
                for (i, c) in b.kernel.iter() {
                    total += c;
                    if insts.desc(i).extension != Extension::BaseIsa {
                        fp += c;
                    }
                }
            }
            fp as f64 / total.max(1) as f64
        };
        let spec = generate_suite(SuiteKind::SpecLike, &insts, &SuiteConfig::small(11));
        let poly = generate_suite(SuiteKind::PolybenchLike, &insts, &SuiteConfig::small(11));
        let spec_fp = count_fp(&spec);
        let poly_fp = count_fp(&poly);
        assert!(spec_fp < 0.2, "SPEC-like FP fraction {spec_fp}");
        assert!(poly_fp > 0.4, "PolyBench-like FP fraction {poly_fp}");
    }

    #[test]
    fn suite_names_are_stable() {
        assert_eq!(SuiteKind::SpecLike.name(), "SPEC2017-like");
        assert_eq!(SuiteKind::PolybenchLike.name(), "Polybench-like");
    }
}
