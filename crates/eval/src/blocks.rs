//! Weighted basic blocks.
//!
//! The paper evaluates every predictor on microkernels built from the
//! instruction mix of real basic blocks, weighted by how often the block was
//! executed in the original benchmark run (the weights enter the RMS error).

use palmed_isa::{InstructionSet, Microkernel};
use palmed_serve::{Corpus, CorpusBlock};

/// One basic block of a benchmark suite: an instruction mix plus a dynamic
/// execution weight.
#[derive(Debug, Clone, PartialEq)]
pub struct BasicBlock {
    /// Identifier (suite name + index), for reports.
    pub name: String,
    /// The dependency-free microkernel built from the block's instruction mix.
    pub kernel: Microkernel,
    /// Dynamic execution weight (≥ 0).
    pub weight: f64,
}

impl BasicBlock {
    /// Creates a block.
    ///
    /// # Panics
    ///
    /// Panics if the weight is negative or not finite.
    pub fn new(name: impl Into<String>, kernel: Microkernel, weight: f64) -> Self {
        assert!(weight.is_finite() && weight >= 0.0, "invalid weight {weight}");
        BasicBlock { name: name.into(), kernel, weight }
    }

    /// Number of instructions in one iteration of the block.
    pub fn size(&self) -> u32 {
        self.kernel.total_instructions()
    }

    /// Renders the block with resolved instruction names.
    pub fn render(&self, insts: &InstructionSet) -> String {
        format!(
            "{} (w={:.1}): {}",
            self.name,
            self.weight,
            self.kernel.display_with(|i| insts.name(i).to_string())
        )
    }

    /// Builds a block from a corpus entry, resolving the interned kernel.
    pub fn from_corpus_block(corpus: &Corpus, block: &CorpusBlock) -> BasicBlock {
        BasicBlock::new(block.name.clone(), corpus.kernel(block.kernel).clone(), block.weight)
    }
}

/// Converts a generated suite into a saveable [`Corpus`] (kernels are
/// interned as they are appended).
pub fn blocks_to_corpus(blocks: &[BasicBlock]) -> Corpus {
    blocks.iter().map(|b| (b.name.clone(), b.weight, b.kernel.clone())).collect()
}

/// Converts a loaded [`Corpus`] into evaluation blocks.
pub fn corpus_to_blocks(corpus: &Corpus) -> Vec<BasicBlock> {
    corpus.blocks().iter().map(|block| BasicBlock::from_corpus_block(corpus, block)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use palmed_isa::InstId;

    #[test]
    fn block_accessors() {
        let k = Microkernel::pair(InstId(0), 2, InstId(1), 1);
        let b = BasicBlock::new("spec/0", k, 10.0);
        assert_eq!(b.size(), 3);
        assert_eq!(b.name, "spec/0");
    }

    #[test]
    #[should_panic(expected = "invalid weight")]
    fn negative_weight_panics() {
        BasicBlock::new("x", Microkernel::single(InstId(0)), -1.0);
    }

    #[test]
    fn render_uses_instruction_names() {
        let insts = InstructionSet::paper_example();
        let addss = insts.find("ADDSS").unwrap();
        let b = BasicBlock::new("poly/3", Microkernel::single(addss), 2.0);
        assert!(b.render(&insts).contains("ADDSS"));
    }

    #[test]
    fn corpus_conversion_round_trips_through_text() {
        let insts = InstructionSet::paper_example();
        let addss = insts.find("ADDSS").unwrap();
        let bsr = insts.find("BSR").unwrap();
        let blocks = vec![
            BasicBlock::new("s/0", Microkernel::pair(addss, 2, bsr, 1), 10.0),
            BasicBlock::new("s/1", Microkernel::single(bsr), 1.5),
        ];
        let corpus = blocks_to_corpus(&blocks);
        let reloaded = Corpus::parse(&corpus.render(&insts), &insts).unwrap();
        assert_eq!(corpus_to_blocks(&reloaded), blocks);
    }
}
