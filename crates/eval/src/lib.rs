//! Evaluation harness: reproduces the tables and figures of the paper's
//! evaluation section (Sec. VI).
//!
//! * [`blocks`] — weighted basic blocks (the unit of evaluation).
//! * [`suite`] — synthetic benchmark suites standing in for the SPEC CPU2017
//!   and PolyBench/C basic-block extractions of the paper: seeded generators
//!   with per-suite opcode-frequency profiles and per-block execution
//!   weights.
//! * [`metrics`] — the three quantities of Fig. 4b: coverage, weighted RMS
//!   error and Kendall's τ.
//! * [`heatmap`] — the 2-D histograms of Fig. 4a (predicted/native IPC ratio
//!   against native IPC).
//! * [`campaign`] — the driver that infers a Palmed mapping per machine,
//!   instantiates every baseline, evaluates all of them on every suite and
//!   collects the results.
//! * [`tables`] — text renderers for Table I, Table II and Fig. 4b.

pub mod blocks;
pub mod campaign;
pub mod heatmap;
pub mod metrics;
pub mod suite;
pub mod tables;

pub use blocks::BasicBlock;
pub use campaign::{Campaign, CampaignConfig, CampaignResult, ToolResult};
pub use heatmap::Heatmap;
pub use metrics::{evaluate_tool, ToolMetrics};
pub use suite::{SuiteKind, SuiteConfig};
