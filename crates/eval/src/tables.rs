//! Text renderers for the paper's tables.
//!
//! * [`table1`] — the qualitative feature matrix (Table I).
//! * [`table2`] — main features of the obtained mappings (Table II), built
//!   from [`MappingReport`]s.
//! * [`figure4b`] — the coverage / error / τ table of Fig. 4b, built from a
//!   [`CampaignResult`].

use crate::campaign::CampaignResult;
use palmed_core::MappingReport;
use std::fmt::Write as _;

/// Renders Table I: key features of Palmed versus related work.
pub fn table1() -> String {
    let rows = [
        ("llvm-mca", false, false, true, true),
        ("Ithemal", true, true, false, false),
        ("IACA", false, false, true, false),
        ("uops.info", false, true, true, false),
        ("PMEvo", true, true, true, false),
        ("Palmed", true, true, true, true),
    ];
    let mut out = String::new();
    let _ = writeln!(out, "Table I: key features of Palmed vs. related work");
    let _ = writeln!(
        out,
        "{:<12} {:>14} {:>20} {:>14} {:>9}",
        "tool", "no HW counters", "no manual expertise", "interpretable", "general"
    );
    for (tool, no_hw, no_manual, interpretable, general) in rows {
        let mark = |b: bool| if b { "yes" } else { "no" };
        let _ = writeln!(
            out,
            "{:<12} {:>14} {:>20} {:>14} {:>9}",
            tool,
            mark(no_hw),
            mark(no_manual),
            mark(interpretable),
            mark(general)
        );
    }
    out
}

/// Renders Table II from one report per machine.
pub fn table2(reports: &[MappingReport]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table II: main features of the obtained mappings");
    if reports.is_empty() {
        let _ = writeln!(out, "(no mappings)");
        return out;
    }
    let rows = reports[0].table_rows();
    for (row_index, (label, _)) in rows.iter().enumerate() {
        let _ = write!(out, "{label:<24}");
        for report in reports {
            let value = &report.table_rows()[row_index].1;
            let _ = write!(out, " {value:>18}");
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders the Fig. 4b table (coverage, RMS error, Kendall τ per tool, suite
/// and machine) from a campaign result.
pub fn figure4b(result: &CampaignResult) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 4b: coverage (%), RMS error (%) and Kendall tau per tool / suite / machine"
    );
    let _ = writeln!(
        out,
        "{:<14} {:<16} {:<14} {:>8} {:>8} {:>8}",
        "machine", "suite", "tool", "Cov.", "Err.", "tauK"
    );
    for machine in &result.machines {
        for (suite, tools) in &machine.suites {
            for tool in tools {
                if tool.metrics.is_unavailable() {
                    let _ = writeln!(
                        out,
                        "{:<14} {:<16} {:<14} {:>8} {:>8} {:>8}",
                        machine.machine,
                        suite.name(),
                        tool.tool,
                        "N/A",
                        "N/A",
                        "N/A"
                    );
                } else {
                    let _ = writeln!(
                        out,
                        "{:<14} {:<16} {:<14} {:>8.1} {:>8.1} {:>8.2}",
                        machine.machine,
                        suite.name(),
                        tool.tool,
                        tool.metrics.coverage * 100.0,
                        tool.metrics.rms_error * 100.0,
                        tool.metrics.kendall_tau
                    );
                }
            }
        }
    }
    out
}

/// Renders the Fig. 4a heatmaps of a campaign as ASCII panels.
pub fn figure4a(result: &CampaignResult) -> String {
    let mut out = String::new();
    for machine in &result.machines {
        for (suite, tools) in &machine.suites {
            for tool in tools {
                if tool.metrics.is_unavailable() {
                    continue;
                }
                let _ = writeln!(
                    out,
                    "--- {} / {} / {} (over-estimation mass {:.0}%)",
                    machine.machine,
                    suite.name(),
                    tool.tool,
                    tool.heatmap.overestimation_mass() * 100.0
                );
                out.push_str(&tool.heatmap.render_ascii());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn table1_lists_all_tools_and_palmed_has_every_feature() {
        let t = table1();
        for tool in ["llvm-mca", "Ithemal", "IACA", "uops.info", "PMEvo", "Palmed"] {
            assert!(t.contains(tool));
        }
        let palmed_line = t.lines().find(|l| l.starts_with("Palmed")).unwrap();
        assert_eq!(palmed_line.matches("yes").count(), 4);
    }

    #[test]
    fn table2_renders_one_column_per_machine() {
        let mk = |name: &str| MappingReport {
            machine: name.into(),
            instructions_total: 100,
            instructions_mapped: 95,
            instructions_skipped: 5,
            basic_instructions: 10,
            resources_found: 12,
            benchmarks_generated: 5000,
            benchmarking_time: Duration::from_secs(3),
            lp_time: Duration::from_secs(1),
        };
        let t = table2(&[mk("skl-sp-like"), mk("zen1-like")]);
        assert!(t.contains("skl-sp-like"));
        assert!(t.contains("zen1-like"));
        assert!(t.contains("Resources found"));
        assert!(table2(&[]).contains("no mappings"));
    }
}
