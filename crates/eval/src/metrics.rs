//! Accuracy metrics of Fig. 4b: coverage, weighted RMS error, Kendall's τ.

use crate::blocks::BasicBlock;
use palmed_core::ThroughputPredictor;
use palmed_stats::{weighted_kendall_tau, weighted_rms_relative_error};

/// Aggregate accuracy of one tool over one suite.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ToolMetrics {
    /// Fraction of blocks the tool produced a prediction for (the paper's
    /// "translation block coverage", relative to the blocks Palmed supports).
    pub coverage: f64,
    /// Weighted root-mean-square relative error of the IPC predictions over
    /// the covered blocks (unsupported instructions degrade the prediction
    /// rather than excluding the block, as in the paper).
    pub rms_error: f64,
    /// Kendall's τ rank correlation between predicted and native IPC.
    pub kendall_tau: f64,
    /// Number of blocks that entered the error statistics.
    pub evaluated_blocks: usize,
}

impl ToolMetrics {
    /// A metrics value representing "tool not available on this target".
    pub fn unavailable() -> Self {
        ToolMetrics { coverage: 0.0, rms_error: f64::NAN, kendall_tau: f64::NAN, evaluated_blocks: 0 }
    }

    /// Whether this row should be rendered as N/A.
    pub fn is_unavailable(&self) -> bool {
        self.evaluated_blocks == 0
    }
}

/// Evaluates a tool on a suite of blocks with known native IPCs.
///
/// `native` must hold one IPC per block, in the same order.
///
/// # Panics
///
/// Panics if `native` and `blocks` have different lengths.
pub fn evaluate_tool<P: ThroughputPredictor + ?Sized>(
    tool: &P,
    blocks: &[BasicBlock],
    native: &[f64],
) -> ToolMetrics {
    assert_eq!(blocks.len(), native.len(), "one native IPC per block required");
    let mut predicted = Vec::new();
    let mut reference = Vec::new();
    let mut weights = Vec::new();
    let mut covered = 0usize;

    for (block, &native_ipc) in blocks.iter().zip(native) {
        match tool.predict_ipc(&block.kernel) {
            Some(ipc) if ipc.is_finite() && ipc > 0.0 => {
                covered += 1;
                predicted.push(ipc);
                reference.push(native_ipc);
                weights.push(block.weight);
            }
            _ => {}
        }
    }

    if covered == 0 {
        return ToolMetrics::unavailable();
    }
    ToolMetrics {
        coverage: covered as f64 / blocks.len().max(1) as f64,
        rms_error: weighted_rms_relative_error(&predicted, &reference, &weights),
        kendall_tau: weighted_kendall_tau(&predicted, &reference, None),
        evaluated_blocks: covered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use palmed_isa::{InstId, Microkernel};

    /// A fake predictor multiplying the true IPC of `InstId(0)`-only kernels.
    struct Fake {
        factor: f64,
        supports_even_only: bool,
    }

    impl ThroughputPredictor for Fake {
        fn name(&self) -> &str {
            "fake"
        }
        fn supports(&self, inst: InstId) -> bool {
            !self.supports_even_only || inst.0.is_multiple_of(2)
        }
        fn predict_ipc(&self, kernel: &Microkernel) -> Option<f64> {
            if kernel.instructions().any(|i| self.supports(i)) {
                Some(self.factor * kernel.total_instructions() as f64)
            } else {
                None
            }
        }
    }

    fn blocks() -> (Vec<BasicBlock>, Vec<f64>) {
        let blocks: Vec<BasicBlock> = (0..4)
            .map(|i| {
                BasicBlock::new(
                    format!("b{i}"),
                    Microkernel::single(InstId(i)).scaled(i + 1),
                    1.0,
                )
            })
            .collect();
        let native: Vec<f64> = blocks.iter().map(|b| b.size() as f64).collect();
        (blocks, native)
    }

    #[test]
    fn perfect_predictor_has_zero_error_and_full_tau() {
        let (blocks, native) = blocks();
        let m = evaluate_tool(&Fake { factor: 1.0, supports_even_only: false }, &blocks, &native);
        assert_eq!(m.coverage, 1.0);
        assert!(m.rms_error < 1e-12);
        assert!((m.kendall_tau - 1.0).abs() < 1e-12);
        assert_eq!(m.evaluated_blocks, 4);
    }

    #[test]
    fn biased_predictor_has_the_expected_rms() {
        let (blocks, native) = blocks();
        let m = evaluate_tool(&Fake { factor: 1.2, supports_even_only: false }, &blocks, &native);
        assert!((m.rms_error - 0.2).abs() < 1e-9);
        // Monotone bias keeps the ranking perfect.
        assert!((m.kendall_tau - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partial_support_reduces_coverage() {
        let (blocks, native) = blocks();
        let m = evaluate_tool(&Fake { factor: 1.0, supports_even_only: true }, &blocks, &native);
        assert!((m.coverage - 0.5).abs() < 1e-12);
        assert_eq!(m.evaluated_blocks, 2);
    }

    #[test]
    fn unavailable_tool_is_flagged() {
        struct Never;
        impl ThroughputPredictor for Never {
            fn name(&self) -> &str {
                "never"
            }
            fn supports(&self, _: InstId) -> bool {
                false
            }
            fn predict_ipc(&self, _: &Microkernel) -> Option<f64> {
                None
            }
        }
        let (blocks, native) = blocks();
        let m = evaluate_tool(&Never, &blocks, &native);
        assert!(m.is_unavailable());
        assert!(m.rms_error.is_nan());
    }
}
