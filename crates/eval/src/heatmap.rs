//! Prediction-profile heatmaps (Fig. 4a).
//!
//! Each heatmap bins the evaluation blocks by their *native* IPC (x axis)
//! and by the ratio *predicted / native* (y axis); the cell intensity is the
//! (weight-) share of blocks falling in the cell.  A perfect predictor puts
//! all the mass on the `ratio = 1` line; over-estimating tools place mass
//! above it, under-estimating tools below.

/// A 2-D histogram of prediction quality.
#[derive(Debug, Clone, PartialEq)]
pub struct Heatmap {
    /// Number of bins on the native-IPC axis.
    pub x_bins: usize,
    /// Number of bins on the ratio axis.
    pub y_bins: usize,
    /// Native IPC covered by the x axis: `[0, x_max]`.
    pub x_max: f64,
    /// Ratio covered by the y axis: `[0, y_max]`.
    pub y_max: f64,
    /// Row-major cell mass, `cells[y * x_bins + x]`, normalised to sum to 1.
    pub cells: Vec<f64>,
    /// Number of samples accumulated.
    pub samples: usize,
}

impl Heatmap {
    /// Creates an empty heatmap with the paper's axes: native IPC up to 6,
    /// prediction ratio up to 2.
    pub fn new(x_bins: usize, y_bins: usize) -> Self {
        Heatmap { x_bins, y_bins, x_max: 6.0, y_max: 2.0, cells: vec![0.0; x_bins * y_bins], samples: 0 }
    }

    /// Accumulates one (native, predicted, weight) observation.
    pub fn add(&mut self, native_ipc: f64, predicted_ipc: f64, weight: f64) {
        if native_ipc <= 0.0 || !predicted_ipc.is_finite() || weight <= 0.0 {
            return;
        }
        let ratio = predicted_ipc / native_ipc;
        let x = ((native_ipc / self.x_max) * self.x_bins as f64)
            .floor()
            .clamp(0.0, self.x_bins as f64 - 1.0) as usize;
        let y = ((ratio / self.y_max) * self.y_bins as f64)
            .floor()
            .clamp(0.0, self.y_bins as f64 - 1.0) as usize;
        self.cells[y * self.x_bins + x] += weight;
        self.samples += 1;
    }

    /// Normalises the cell mass to sum to one (no-op when empty).
    pub fn normalise(&mut self) {
        let total: f64 = self.cells.iter().sum();
        if total > 0.0 {
            for c in &mut self.cells {
                *c /= total;
            }
        }
    }

    /// Mass of one cell.
    pub fn cell(&self, x: usize, y: usize) -> f64 {
        self.cells[y * self.x_bins + x]
    }

    /// Share of the mass lying above the `ratio = 1` row (over-estimation).
    pub fn overestimation_mass(&self) -> f64 {
        let split = ((1.0 / self.y_max) * self.y_bins as f64).floor() as usize;
        let total: f64 = self.cells.iter().sum();
        if total == 0.0 {
            return 0.0;
        }
        let above: f64 = (split..self.y_bins)
            .flat_map(|y| (0..self.x_bins).map(move |x| (x, y)))
            .map(|(x, y)| self.cell(x, y))
            .sum();
        above / total
    }

    /// ASCII rendering (densest cell = '#'), highest ratio row first.
    pub fn render_ascii(&self) -> String {
        let max = self.cells.iter().copied().fold(0.0f64, f64::max);
        let shades = [' ', '.', ':', '-', '=', '+', '*', '#'];
        let mut out = String::new();
        for y in (0..self.y_bins).rev() {
            let ratio_hi = (y + 1) as f64 / self.y_bins as f64 * self.y_max;
            out.push_str(&format!("{ratio_hi:>5.2} |"));
            for x in 0..self.x_bins {
                let v = self.cell(x, y);
                let idx = if max == 0.0 {
                    0
                } else {
                    ((v / max) * (shades.len() - 1) as f64).round() as usize
                };
                out.push(shades[idx.min(shades.len() - 1)]);
            }
            out.push('\n');
        }
        out.push_str("      +");
        out.push_str(&"-".repeat(self.x_bins));
        out.push('\n');
        out.push_str(&format!(
            "       native IPC 0 .. {:.0}  (ratio axis up to {:.1})\n",
            self.x_max, self.y_max
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions_sit_on_the_unit_ratio_row() {
        let mut h = Heatmap::new(12, 8);
        for ipc in [0.5, 1.0, 2.0, 3.5] {
            h.add(ipc, ipc, 1.0);
        }
        h.normalise();
        let unit_row = ((1.0 / h.y_max) * h.y_bins as f64).floor() as usize;
        let mass_on_unit: f64 = (0..h.x_bins).map(|x| h.cell(x, unit_row)).sum();
        assert!((mass_on_unit - 1.0).abs() < 1e-9);
    }

    #[test]
    fn overestimation_mass_reflects_bias() {
        let mut over = Heatmap::new(6, 6);
        let mut under = Heatmap::new(6, 6);
        for ipc in [1.0, 2.0, 3.0] {
            over.add(ipc, ipc * 1.8, 1.0);
            under.add(ipc, ipc * 0.4, 1.0);
        }
        assert!(over.overestimation_mass() > 0.9);
        assert!(under.overestimation_mass() < 0.1);
    }

    #[test]
    fn invalid_samples_are_ignored() {
        let mut h = Heatmap::new(4, 4);
        h.add(0.0, 1.0, 1.0);
        h.add(1.0, f64::NAN, 1.0);
        h.add(1.0, 1.0, 0.0);
        assert_eq!(h.samples, 0);
        assert!(h.cells.iter().all(|&c| c == 0.0));
    }

    #[test]
    fn ascii_rendering_has_one_line_per_ratio_bin() {
        let mut h = Heatmap::new(10, 5);
        h.add(2.0, 2.0, 1.0);
        h.normalise();
        let text = h.render_ascii();
        assert_eq!(text.lines().count(), 5 + 2);
        assert!(text.contains('#'));
    }

    #[test]
    fn out_of_range_values_clamp_to_border_bins() {
        let mut h = Heatmap::new(4, 4);
        h.add(100.0, 1000.0, 1.0); // way beyond both axes
        assert_eq!(h.samples, 1);
        assert!(h.cell(3, 3) > 0.0);
    }
}
