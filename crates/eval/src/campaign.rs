//! The evaluation campaign: everything needed to regenerate Fig. 4 and
//! Table II.
//!
//! For every target machine (SKL-SP-like, Zen1-like) the campaign:
//!
//! 1. infers a Palmed mapping from cycle measurements only;
//! 2. instantiates the baselines (uops.info-style, PMEvo, IACA-like,
//!    llvm-mca-like), honouring their real-world availability: IACA and
//!    uops.info port mappings are unavailable on the AMD target, PMEvo only
//!    supports the instructions of its training binaries;
//! 3. generates the SPEC-like and PolyBench-like block suites;
//! 4. measures the native IPC of every block and collects, per tool,
//!    coverage / RMS error / Kendall τ (Fig. 4b) and the prediction-profile
//!    heatmap (Fig. 4a).

use crate::blocks::BasicBlock;
use crate::heatmap::Heatmap;
use crate::metrics::{evaluate_tool, ToolMetrics};
use crate::suite::{generate_suite, SuiteConfig, SuiteKind};
use palmed_baselines::{
    IacaLikePredictor, McaLikePredictor, PmEvo, PmEvoConfig, PmEvoPredictor, UopsStylePredictor,
};
use palmed_core::{MappingReport, Palmed, PalmedConfig, PalmedPredictor, ThroughputPredictor};
use palmed_isa::{ExecClass, InstId, InstructionSet, InventoryConfig};
use palmed_machine::{
    presets::PresetMachine, AnalyticMeasurer, BackendKind, BackendMeasurer, MeasurementNoise,
    Measurer, MemoizingMeasurer, SimulationConfig,
};
use palmed_par::par_map;
use palmed_serve::{CompiledModel, DisjArtifact, ModelRegistry, RegistryEntry};
use std::sync::Arc;

/// Configuration of a full evaluation campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignConfig {
    /// Size of the synthetic instruction inventory.
    pub inventory: InventoryConfig,
    /// Suite generation parameters.
    pub suite: SuiteConfig,
    /// Which measurement back-end plays the role of the real hardware.  The
    /// cycle-level simulation is the faithful choice (its greedy dispatch,
    /// finite scheduler window and non-pipelined units are exactly the
    /// non-port bottlenecks the port-only baselines ignore); the analytic
    /// bound is available for fast smoke tests and for ablations.
    pub backend: BackendKind,
    /// Measurement noise applied to native executions and to the
    /// measurements the inference tools see.
    pub noise: MeasurementNoise,
    /// Palmed inference configuration.
    pub palmed: PalmedConfig,
    /// PMEvo training configuration.
    pub pmevo: PmEvoConfig,
    /// Heatmap resolution (x bins, y bins).
    pub heatmap_bins: (usize, usize),
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            inventory: InventoryConfig::default(),
            suite: SuiteConfig::default(),
            backend: BackendKind::Simulation(SimulationConfig::default()),
            noise: MeasurementNoise::realistic(2022),
            palmed: PalmedConfig::evaluation(),
            pmevo: PmEvoConfig::default(),
            heatmap_bins: (24, 16),
        }
    }
}

impl CampaignConfig {
    /// A reduced campaign (small inventory, few blocks, analytic back-end)
    /// for tests and smoke runs.
    pub fn small() -> Self {
        CampaignConfig {
            inventory: InventoryConfig::small(),
            suite: SuiteConfig::small(99),
            backend: BackendKind::Analytic,
            noise: MeasurementNoise::none(),
            palmed: PalmedConfig::evaluation(),
            pmevo: PmEvoConfig::fast(),
            heatmap_bins: (12, 8),
        }
    }

    /// A quick but representative campaign: small inventory, but the same
    /// cycle-level simulation back-end and noise model as the full run, so
    /// the qualitative shape of Fig. 4 already shows up in seconds.
    pub fn quick() -> Self {
        CampaignConfig {
            backend: BackendKind::Simulation(SimulationConfig {
                warmup_cycles: 100,
                measured_cycles: 1_000,
            }),
            noise: MeasurementNoise::realistic(2022),
            ..CampaignConfig::small()
        }
    }
}

/// Result of one tool on one suite of one machine.
#[derive(Debug, Clone)]
pub struct ToolResult {
    /// Tool display name.
    pub tool: String,
    /// Coverage / error / τ metrics (Fig. 4b row).
    pub metrics: ToolMetrics,
    /// Prediction-profile heatmap (Fig. 4a panel).
    pub heatmap: Heatmap,
}

/// Results of one machine of the campaign.
#[derive(Debug, Clone)]
pub struct MachineResult {
    /// Machine display name.
    pub machine: String,
    /// The Table II report of the Palmed inference run.
    pub report: MappingReport,
    /// Per (suite, tool) results.
    pub suites: Vec<(SuiteKind, Vec<ToolResult>)>,
}

/// Full campaign output.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// One entry per machine.
    pub machines: Vec<MachineResult>,
}

/// The campaign driver.
#[derive(Debug, Clone, Default)]
pub struct Campaign {
    config: CampaignConfig,
    /// Pre-loaded baseline models, looked up by `"<machine>/<tool>"`.
    baselines: Option<Arc<ModelRegistry>>,
}

impl Campaign {
    /// Creates a campaign driver.
    pub fn new(config: CampaignConfig) -> Self {
        Campaign { config, baselines: None }
    }

    /// Serves baseline models out of a registry instead of re-training them
    /// per campaign.  Currently the PMEvo baseline is looked up as a
    /// disjunctive entry named `"<machine>/pmevo"` (the key
    /// [`pmevo_artifact_for`] writes); when present, its compiled port
    /// mapping is evaluated directly — the evolutionary search and its pair
    /// benchmarks are skipped entirely, the way the real tools load
    /// published mappings.  Missing or non-disjunctive entries fall back to
    /// training.
    #[must_use]
    pub fn with_baselines(mut self, registry: Arc<ModelRegistry>) -> Self {
        self.baselines = Some(registry);
        self
    }

    /// The configuration of this campaign.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// Runs the campaign for one machine.
    pub fn run_machine(&self, preset: &PresetMachine, is_intel_like: bool) -> MachineResult {
        let _span = palmed_obs::span("eval.machine");
        palmed_obs::counter!("eval.machines").inc();
        let config = &self.config;
        let ground_truth = preset.mapping_arc();
        let insts = Arc::clone(&preset.instructions);

        // Native back-end and the measurer handed to the inference tools.
        // Both are the same device, as on real hardware: Palmed and PMEvo
        // train on exactly the kind of measurements the evaluation uses.
        let native = BackendMeasurer::new(config.backend, Arc::clone(&ground_truth), config.noise);
        let inference_measurer = MemoizingMeasurer::new(BackendMeasurer::new(
            config.backend,
            Arc::clone(&ground_truth),
            config.noise,
        ));

        // ---- Palmed inference. ----
        let palmed_result = Palmed::new(config.palmed).infer(&inference_measurer);
        let mut report = palmed_result.report.clone();
        report.machine = preset.name().to_string();
        report.benchmarks_generated = inference_measurer.distinct_kernels();
        // The campaign serves heavy prediction traffic (every tool × suite ×
        // block), so Palmed is evaluated through its compiled serving form —
        // bit-identical to `PalmedResult::predictor()`, without the per-call
        // BTreeMap walks.
        let palmed_predictor = CompiledModel::compile("palmed", &palmed_result.mapping);

        // ---- Baselines. ----
        // PMEvo's mapping comes from the baseline registry when a campaign
        // pre-loaded one (a persisted `PALMED-DISJ v1` artifact — the way
        // the real tools ship published port mappings); otherwise it is
        // re-evolved on one representative per execution class plus the
        // Palmed basic instructions — its published mapping only covers the
        // instructions occurring in its training binaries, which is what
        // limits its coverage.
        // The entry must carry this campaign's exact instruction inventory:
        // `InstId`s are indices, so an artifact persisted under a different
        // inventory would silently score the wrong instructions.  Mismatches
        // fall back to training.
        let preloaded_pmevo: Option<Arc<RegistryEntry>> = self
            .baselines
            .as_ref()
            .and_then(|registry| registry.get(&format!("{}/pmevo", preset.name())))
            .filter(|entry| {
                entry
                    .disjunctive()
                    .is_some_and(|model| model.artifact.instructions == *insts)
            });
        let trained_pmevo: Option<PmEvoPredictor> = if preloaded_pmevo.is_none() {
            let mut pmevo_trained: Vec<InstId> = ExecClass::ALL
                .iter()
                .filter_map(|&class| insts.ids_with_class(class).into_iter().next())
                .collect();
            for inst in palmed_result.basic_instructions() {
                if !pmevo_trained.contains(&inst) {
                    pmevo_trained.push(inst);
                }
            }
            Some(PmEvo::new(config.pmevo).train(&inference_measurer, &pmevo_trained))
        } else {
            None
        };
        let pmevo: &dyn ThroughputPredictor = preloaded_pmevo
            .as_deref()
            .and_then(|entry| entry.disjunctive())
            .map(|model| &model.compiled as &dyn ThroughputPredictor)
            .or(trained_pmevo.as_ref().map(|p| p as &dyn ThroughputPredictor))
            .expect("pmevo is preloaded or freshly trained");

        let uops = UopsStylePredictor::new(Arc::clone(&ground_truth));
        let iaca = if is_intel_like {
            IacaLikePredictor::new(Arc::clone(&ground_truth))
        } else {
            IacaLikePredictor::new(Arc::clone(&ground_truth)).unavailable()
        };
        let mca = McaLikePredictor::new(Arc::clone(&ground_truth));

        // ---- Suites and evaluation. ----
        let mut suites = Vec::new();
        for kind in SuiteKind::ALL {
            let blocks = generate_suite(kind, &insts, &config.suite);
            palmed_obs::counter!("eval.suites").inc();
            palmed_obs::counter!("eval.blocks").add(blocks.len() as u64);
            // Per-block native measurements are independent; fan out across
            // cores (results keep the block order).
            let native_ipcs: Vec<f64> = par_map(&blocks, |b| native.ipc(&b.kernel));

            let tools: Vec<(&str, &dyn ThroughputPredictor, bool)> = vec![
                ("palmed", &palmed_predictor as &dyn ThroughputPredictor, true),
                ("uops-style", &uops, is_intel_like),
                ("pmevo", pmevo, true),
                ("iaca-like", &iaca, is_intel_like),
                ("llvm-mca-like", &mca, true),
            ];

            let mut results = Vec::new();
            for (name, tool, available) in tools {
                let result = if available {
                    evaluate_with_heatmap(tool, &blocks, &native_ipcs, config.heatmap_bins)
                } else {
                    ToolResult {
                        tool: name.to_string(),
                        metrics: ToolMetrics::unavailable(),
                        heatmap: Heatmap::new(config.heatmap_bins.0, config.heatmap_bins.1),
                    }
                };
                results.push(ToolResult { tool: name.to_string(), ..result });
            }
            suites.push((kind, results));
        }

        MachineResult { machine: preset.name().to_string(), report, suites }
    }

    /// Runs the campaign for the two evaluation targets of the paper.
    pub fn run(&self) -> CampaignResult {
        let skl = palmed_machine::presets::skl_sp(&self.config.inventory);
        let zen = palmed_machine::presets::zen1(&self.config.inventory);
        CampaignResult {
            machines: vec![self.run_machine(&skl, true), self.run_machine(&zen, false)],
        }
    }
}

fn evaluate_with_heatmap(
    tool: &dyn ThroughputPredictor,
    blocks: &[BasicBlock],
    native: &[f64],
    bins: (usize, usize),
) -> ToolResult {
    let metrics = evaluate_tool(tool, blocks, native);
    let mut heatmap = Heatmap::new(bins.0, bins.1);
    for (block, &native_ipc) in blocks.iter().zip(native) {
        if let Some(predicted) = tool.predict_ipc(&block.kernel) {
            heatmap.add(native_ipc, predicted, block.weight);
        }
    }
    heatmap.normalise();
    ToolResult { tool: tool.name().to_string(), metrics, heatmap }
}

/// Flattens a trained PMEvo predictor into a persistable `PALMED-DISJ v1`
/// artifact, keyed the way [`Campaign::with_baselines`] looks it up
/// (machine name `"<preset>/pmevo"`).  Save it once, and later campaigns
/// load the pre-built table instead of re-evolving the mapping; the loaded
/// model predicts bit-identically to `predictor`.
///
/// `instructions` must be the inventory the predictor was trained against —
/// it is what the campaign's inventory check compares.
///
/// # Panics
///
/// Panics if the predictor uses more abstract ports than the artifact
/// format's cap ([`palmed_serve::disj::MAX_DISJ_PORTS`], 16); PMEvo
/// configurations use far fewer (6 by default) — the subset enumeration is
/// exponential in the port count.
pub fn pmevo_artifact_for(
    preset_name: &str,
    predictor: &PmEvoPredictor,
    instructions: &InstructionSet,
) -> DisjArtifact {
    DisjArtifact::new(
        format!("{preset_name}/pmevo"),
        "pmevo-evolved",
        instructions.clone(),
        predictor.num_ports() as u32,
        predictor.to_rows(),
    )
}

/// Convenience: returns the Palmed predictor and the ground-truth measurer of
/// a preset, for examples that only need a single machine.
pub fn infer_palmed_for(preset: &PresetMachine, config: PalmedConfig) -> (PalmedPredictor, AnalyticMeasurer) {
    let measurer = MemoizingMeasurer::new(AnalyticMeasurer::new(preset.mapping_arc()));
    let result = Palmed::new(config).infer(&measurer);
    (result.predictor(), AnalyticMeasurer::new(preset.mapping_arc()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use palmed_machine::presets;

    #[test]
    fn small_campaign_on_skl_produces_sensible_results() {
        let config = CampaignConfig::small();
        let campaign = Campaign::new(config);
        let preset = presets::skl_sp(&config.inventory);
        let result = campaign.run_machine(&preset, true);

        assert_eq!(result.machine, "skl-sp-like");
        assert!(result.report.instructions_mapped > 0);
        assert_eq!(result.suites.len(), 2);
        for (_, tools) in &result.suites {
            assert_eq!(tools.len(), 5);
            let palmed = tools.iter().find(|t| t.tool == "palmed").unwrap();
            assert!(palmed.metrics.coverage > 0.95, "palmed coverage {}", palmed.metrics.coverage);
            assert!(
                palmed.metrics.rms_error < 0.45,
                "palmed error too high: {}",
                palmed.metrics.rms_error
            );
            let pmevo = tools.iter().find(|t| t.tool == "pmevo").unwrap();
            assert!(pmevo.metrics.coverage <= palmed.metrics.coverage + 1e-9);
            let uops = tools.iter().find(|t| t.tool == "uops-style").unwrap();
            assert!(!uops.metrics.is_unavailable());
        }
    }

    #[test]
    fn preloaded_pmevo_baseline_is_served_instead_of_retrained() {
        let config = CampaignConfig::small();
        let preset = presets::skl_sp(&config.inventory);
        let baseline = Campaign::new(config).run_machine(&preset, true);

        // Train a deliberately tiny PMEvo (two instructions) out of band,
        // persist it through the disjunctive codec, and hand it to the
        // campaign via the registry.
        let measurer = MemoizingMeasurer::new(AnalyticMeasurer::new(preset.mapping_arc()));
        let trained: Vec<InstId> = preset.instructions.ids().take(2).collect();
        let predictor = PmEvo::new(config.pmevo).train(&measurer, &trained);
        let artifact = pmevo_artifact_for(preset.name(), &predictor, &preset.instructions);
        let bytes = artifact.render();
        let registry = Arc::new(ModelRegistry::new());
        registry
            .swap_bytes(format!("{}/pmevo", preset.name()), bytes)
            .expect("disjunctive artifact round trips through the registry");

        let run = Campaign::new(config)
            .with_baselines(Arc::clone(&registry))
            .run_machine(&preset, true);
        for (kind, tools) in &run.suites {
            let pmevo = tools.iter().find(|t| t.tool == "pmevo").unwrap();
            let full = baseline
                .suites
                .iter()
                .find(|(k, _)| k == kind)
                .and_then(|(_, tools)| tools.iter().find(|t| t.tool == "pmevo"))
                .unwrap();
            assert!(!pmevo.metrics.is_unavailable());
            // The served two-instruction model covers far less than the
            // campaign-trained one would — proof the campaign used the
            // registry entry rather than re-training.
            assert!(
                pmevo.metrics.coverage < full.metrics.coverage,
                "preloaded coverage {} should undercut trained coverage {}",
                pmevo.metrics.coverage,
                full.metrics.coverage
            );
        }
    }

    #[test]
    fn zen_like_campaign_marks_intel_only_tools_unavailable() {
        let config = CampaignConfig::small();
        let campaign = Campaign::new(config);
        let preset = presets::zen1(&config.inventory);
        let result = campaign.run_machine(&preset, false);
        for (_, tools) in &result.suites {
            let iaca = tools.iter().find(|t| t.tool == "iaca-like").unwrap();
            assert!(iaca.metrics.is_unavailable());
            let uops = tools.iter().find(|t| t.tool == "uops-style").unwrap();
            assert!(uops.metrics.is_unavailable());
            let palmed = tools.iter().find(|t| t.tool == "palmed").unwrap();
            assert!(!palmed.metrics.is_unavailable());
        }
    }
}
