//! The throughput-predictor interface shared by Palmed and the baselines.
//!
//! Every tool compared in the paper's evaluation (Palmed, uops.info-style
//! port mappings, PMEvo, IACA / llvm-mca-like static analysers) answers the
//! same question: *given a basic block's instruction mix, what is its
//! steady-state IPC?*  [`ThroughputPredictor`] captures exactly that
//! interface, including the possibility of not supporting an instruction —
//! the coverage metric of Fig. 4b counts how often that happens.

use crate::conjunctive::ConjunctiveMapping;
use palmed_isa::{InstId, Microkernel};

/// A static throughput model: predicts the IPC of dependency-free
/// instruction mixes.
pub trait ThroughputPredictor {
    /// Short human-readable name ("palmed", "uops-style", ...).
    fn name(&self) -> &str;

    /// Whether the predictor has a model for the instruction.
    fn supports(&self, inst: InstId) -> bool;

    /// Predicted IPC of the kernel, or `None` when the predictor cannot
    /// produce any estimate (e.g. no supported instruction in the kernel).
    ///
    /// Unsupported instructions inside an otherwise supported kernel are
    /// treated as taking no resource at all — the degraded mode the paper
    /// uses when evaluating PMEvo.
    fn predict_ipc(&self, kernel: &Microkernel) -> Option<f64>;

    /// Fraction of the kernel's instructions that are supported.
    fn support_fraction(&self, kernel: &Microkernel) -> f64 {
        let total = kernel.total_instructions();
        if total == 0 {
            return 0.0;
        }
        let supported: u32 =
            kernel.iter().filter(|&(i, _)| self.supports(i)).map(|(_, c)| c).sum();
        supported as f64 / total as f64
    }
}

/// Palmed's predictor: a conjunctive resource mapping evaluated with the
/// closed-form throughput formula of Def. IV.3.
#[derive(Debug, Clone)]
pub struct PalmedPredictor {
    name: String,
    mapping: ConjunctiveMapping,
}

impl PalmedPredictor {
    /// Wraps an inferred mapping.
    pub fn new(mapping: ConjunctiveMapping) -> Self {
        PalmedPredictor { name: "palmed".to_string(), mapping }
    }

    /// Wraps a mapping under a custom display name (used for the oracle dual).
    pub fn with_name(name: impl Into<String>, mapping: ConjunctiveMapping) -> Self {
        PalmedPredictor { name: name.into(), mapping }
    }

    /// The underlying mapping.
    pub fn mapping(&self) -> &ConjunctiveMapping {
        &self.mapping
    }
}

impl ThroughputPredictor for PalmedPredictor {
    fn name(&self) -> &str {
        &self.name
    }

    fn supports(&self, inst: InstId) -> bool {
        self.mapping.supports(inst)
    }

    fn predict_ipc(&self, kernel: &Microkernel) -> Option<f64> {
        self.mapping.ipc(kernel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mapping() -> ConjunctiveMapping {
        let mut m = ConjunctiveMapping::with_resources(2);
        m.set_usage(InstId(0), vec![1.0, 0.5]);
        m.set_usage(InstId(1), vec![0.0, 0.5]);
        m
    }

    #[test]
    fn predictor_exposes_mapping_support() {
        let p = PalmedPredictor::new(mapping());
        assert_eq!(p.name(), "palmed");
        assert!(p.supports(InstId(0)));
        assert!(!p.supports(InstId(9)));
    }

    #[test]
    fn prediction_uses_the_conjunctive_formula() {
        let p = PalmedPredictor::new(mapping());
        let k = Microkernel::pair(InstId(0), 1, InstId(1), 1);
        // loads: r0 = 1, r1 = 1 -> t = 1 -> IPC 2.
        assert!((p.predict_ipc(&k).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn unsupported_only_kernel_has_no_prediction() {
        let p = PalmedPredictor::new(mapping());
        assert!(p.predict_ipc(&Microkernel::single(InstId(9))).is_none());
    }

    #[test]
    fn support_fraction_counts_instructions() {
        let p = PalmedPredictor::new(mapping());
        let k = Microkernel::pair(InstId(0), 1, InstId(9), 3);
        assert!((p.support_fraction(&k) - 0.25).abs() < 1e-12);
        assert_eq!(p.support_fraction(&Microkernel::new()), 0.0);
    }

    #[test]
    fn predictor_is_object_safe() {
        let p = PalmedPredictor::with_name("oracle", mapping());
        let as_dyn: &dyn ThroughputPredictor = &p;
        assert_eq!(as_dyn.name(), "oracle");
    }
}
