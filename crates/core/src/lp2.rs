//! LP2 — the Bipartite Weight Problem (Algorithm 4).
//!
//! Given the shape found by LP1 (allowed edges) and the set of measured
//! benchmarks, LP2 assigns a weight `ρ_{i,r} ∈ [0, 1]` to every edge so that
//! the conjunctive model reproduces the measured IPCs as closely as
//! possible.  For a benchmark `K` with measured throughput `ipc(K)`, the
//! relative usage of resource `r` is
//!
//! ```text
//! ρ_{K,r} = ( Σ_i σ_{K,i} ρ_{i,r} ) · ipc(K) / |K|      (≤ 1)
//! ```
//!
//! and the model is exact for `K` when some resource saturates
//! (`S_K = max_r ρ_{K,r} = 1`).  The objective is to minimise the total
//! prediction slack `Σ_K (1 − S_K)`.
//!
//! `S_K` is a maximum, so maximising `Σ_K S_K` is not directly an LP.  The
//! paper solves the full problem with a MILP-capable solver; this
//! implementation offers the same exact MILP formulation
//! ([`solve_bwp_exact`]) plus a fast alternating relaxation
//! ([`solve_bwp`]) that re-selects each benchmark's saturating resource and
//! re-solves a pure LP until the selection stabilises — the standard
//! block-coordinate treatment of minimax objectives, which converges in a
//! handful of rounds on Palmed's instances and is the default path.

use crate::conjunctive::ConjunctiveMapping;
use crate::lp1::ShapeMapping;
use palmed_isa::{InstId, Microkernel};
use palmed_lp::minimax::exact_max;
use palmed_lp::{LinExpr, LpError, MilpOptions, Problem, Sense, SimplexOptions, VarId};
use std::collections::BTreeMap;

/// Configuration of the weight-assignment phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BwpConfig {
    /// Maximum number of alternating rounds.
    pub max_rounds: usize,
    /// Convergence tolerance on the objective between rounds.
    pub tolerance: f64,
}

impl Default for BwpConfig {
    fn default() -> Self {
        BwpConfig { max_rounds: 8, tolerance: 1e-6 }
    }
}

/// Result of the weight assignment.
#[derive(Debug, Clone)]
pub struct BwpSolution {
    /// The core conjunctive mapping (basic instructions only).
    pub mapping: ConjunctiveMapping,
    /// Per benchmark, the achieved saturation `S_K` (1 = perfectly explained).
    pub saturation: Vec<f64>,
    /// Total slack `Σ_K (1 − S_K)` (the LP2 objective).
    pub total_slack: f64,
}

/// Builds the LP variables and the per-(kernel, resource) usage expressions
/// shared by both solution strategies.
struct BwpModel {
    problem: Problem,
    edges: BTreeMap<(InstId, usize), VarId>,
    /// For every kernel: its measured IPC and the usage expression of every
    /// resource.
    kernel_usage: Vec<Vec<LinExpr>>,
}

fn build_model(shape: &ShapeMapping, kernels: &[(Microkernel, f64)], num_resources: usize) -> BwpModel {
    let mut problem = Problem::new(Sense::Maximize);
    let mut edges = BTreeMap::new();
    for (&inst, allowed) in &shape.allowed {
        for &r in allowed {
            let v = problem.add_var(format!("rho_{inst}_{r}"), 0.0, 1.0);
            edges.insert((inst, r), v);
        }
    }
    let mut kernel_usage = Vec::with_capacity(kernels.len());
    for (kernel, ipc) in kernels {
        let scale = ipc / kernel.total_instructions() as f64;
        let mut per_resource = Vec::with_capacity(num_resources);
        for r in 0..num_resources {
            let mut usage = LinExpr::new();
            for (inst, count) in kernel.iter() {
                if let Some(&v) = edges.get(&(inst, r)) {
                    usage.add_term(count as f64 * scale, v);
                }
            }
            // ρ_{K,r} <= 1.  Constraints whose left-hand side is identically
            // zero (the kernel touches no instruction allowed on `r`) are
            // vacuous and only bloat the tableau, so they are skipped.
            if !usage.is_constant() {
                problem.add_le(usage.clone(), 1.0);
            }
            per_resource.push(usage);
        }
        kernel_usage.push(per_resource);
    }
    BwpModel { problem, edges, kernel_usage }
}

fn extract_mapping(
    shape: &ShapeMapping,
    edges: &BTreeMap<(InstId, usize), VarId>,
    num_resources: usize,
    values: &palmed_lp::Solution,
) -> ConjunctiveMapping {
    let mut mapping = ConjunctiveMapping::with_resources(num_resources);
    for (&inst, allowed) in &shape.allowed {
        let mut usage = vec![0.0; num_resources];
        for &r in allowed {
            let v = edges[&(inst, r)];
            usage[r] = values[v].max(0.0);
        }
        mapping.set_usage(inst, usage);
    }
    mapping
}

/// Solves the BWP with the alternating (argmax re-selection) strategy.
///
/// # Errors
///
/// Propagates LP solver failures; the model is always feasible (all weights
/// zero), so failures indicate solver-level problems.
pub fn solve_bwp(
    shape: &ShapeMapping,
    kernels: &[(Microkernel, f64)],
    config: &BwpConfig,
) -> Result<BwpSolution, LpError> {
    let num_resources = shape.num_resources;
    if num_resources == 0 || kernels.is_empty() {
        return Ok(BwpSolution {
            mapping: ConjunctiveMapping::with_resources(num_resources),
            saturation: vec![0.0; kernels.len()],
            total_slack: kernels.len() as f64,
        });
    }

    // Initial saturating-resource guess for every kernel: the allowed
    // resource covering the largest share of the kernel, preferring *more
    // private* resources (fewer users in the shape) on ties.  The private
    // preference matters for single-instruction benchmarks: an instruction
    // saturates its own resource, and starting from the widely shared one
    // can trap the alternation in a poor local optimum.
    let users_per_resource: Vec<usize> =
        (0..num_resources).map(|r| shape.users_of(r).len()).collect();
    let mut chosen: Vec<usize> = kernels
        .iter()
        .map(|(kernel, _)| {
            (0..num_resources)
                .max_by_key(|&r| {
                    let coverage: u64 = kernel
                        .iter()
                        .filter(|&(i, _)| shape.allowed.get(&i).is_some_and(|s| s.contains(&r)))
                        .map(|(_, c)| c as u64)
                        .sum();
                    // privacy bonus: fewer users ranks higher on equal coverage
                    (coverage, usize::MAX - users_per_resource[r])
                })
                .unwrap_or(0)
        })
        .collect();

    let mut best: Option<BwpSolution> = None;
    let simplex_options = SimplexOptions::default();
    for _ in 0..config.max_rounds {
        palmed_obs::counter!("trainer.lp2.rounds").inc();
        // For a fixed choice of saturating resource per kernel, the LP
        // decomposes by resource: the variables `ρ_{i,r}` of resource `r`
        // only appear in the `ρ_{K,r} ≤ 1` constraints of that same resource
        // and in the objective terms of the kernels whose chosen resource is
        // `r`.  Solving one small LP per resource is therefore exact and
        // avoids building one tableau with |K|·|R| rows.
        let mut weights: BTreeMap<(InstId, usize), f64> = BTreeMap::new();
        for r in 0..num_resources {
            let users = shape.users_of(r);
            if users.is_empty() {
                continue;
            }
            let mut problem = Problem::new(Sense::Maximize);
            let vars: BTreeMap<InstId, VarId> = users
                .iter()
                .map(|&i| (i, problem.add_var(format!("rho_{i}_{r}"), 0.0, 1.0)))
                .collect();
            let usage_expr = |kernel: &Microkernel| {
                let scale = 1.0 / kernel.total_instructions() as f64;
                let mut usage = LinExpr::new();
                for (inst, count) in kernel.iter() {
                    if let Some(&v) = vars.get(&inst) {
                        usage.add_term(count as f64 * scale, v);
                    }
                }
                usage
            };
            let mut objective = LinExpr::new();
            for (k, (kernel, ipc)) in kernels.iter().enumerate() {
                let mut usage = usage_expr(kernel);
                if usage.is_constant() {
                    continue;
                }
                usage = {
                    let mut scaled = LinExpr::new();
                    scaled.add_scaled(*ipc, &usage);
                    scaled
                };
                problem.add_le(usage.clone(), 1.0);
                if chosen[k] == r {
                    objective.add_scaled(1.0, &usage);
                }
            }
            problem.set_objective(objective);
            // Deliberately a *cold* solve: the saturation objective has many
            // optimal vertices and the alternating heuristic interprets the
            // returned vertex (it re-selects each kernel's saturating
            // resource from the weights).  Warm-starting from the previous
            // round makes the vertex path-dependent, and empirically steers
            // the alternation to measurably worse mappings on the SKL-like
            // evaluation machine; a deterministic cold start keeps every
            // round reproducible.  The solve still uses the sparse revised
            // engine, so each LP remains cheap.
            let solution = problem.solve_relaxation(&simplex_options)?;
            for (&inst, &v) in &vars {
                weights.insert((inst, r), solution[v].max(0.0));
            }
        }

        // Evaluate the true saturation of every kernel under the new weights
        // and re-select each kernel's saturating resource.
        let usage_of = |kernel: &Microkernel, ipc: f64, r: usize| -> f64 {
            let scale = ipc / kernel.total_instructions() as f64;
            kernel
                .iter()
                .map(|(inst, count)| {
                    count as f64 * scale * weights.get(&(inst, r)).copied().unwrap_or(0.0)
                })
                .sum()
        };
        let saturation: Vec<f64> = kernels
            .iter()
            .map(|(kernel, ipc)| {
                (0..num_resources).map(|r| usage_of(kernel, *ipc, r)).fold(0.0, f64::max)
            })
            .collect();
        let total_slack: f64 = saturation.iter().map(|&s| 1.0 - s).sum();
        let mut mapping = ConjunctiveMapping::with_resources(num_resources);
        for (&inst, allowed) in &shape.allowed {
            let mut usage = vec![0.0; num_resources];
            for &r in allowed {
                usage[r] = weights.get(&(inst, r)).copied().unwrap_or(0.0);
            }
            mapping.set_usage(inst, usage);
        }
        let improved = best.as_ref().is_none_or(|b| total_slack < b.total_slack - config.tolerance);
        let next_chosen: Vec<usize> = kernels
            .iter()
            .map(|(kernel, ipc)| {
                (0..num_resources)
                    .max_by(|&a, &b| {
                        usage_of(kernel, *ipc, a)
                            .partial_cmp(&usage_of(kernel, *ipc, b))
                            .expect("finite usage")
                    })
                    .unwrap_or(0)
            })
            .collect();
        if improved {
            best = Some(BwpSolution { mapping, saturation, total_slack });
        }
        if next_chosen == chosen {
            break;
        }
        chosen = next_chosen;
    }
    Ok(best.expect("at least one round runs"))
}

/// Exact MILP formulation of the BWP (binary selector per kernel picking its
/// saturating resource).  Exponential in principle; used on small instances
/// and as a reference in tests.
///
/// # Errors
///
/// Propagates LP/MILP solver failures (node limits included).
pub fn solve_bwp_exact(
    shape: &ShapeMapping,
    kernels: &[(Microkernel, f64)],
) -> Result<BwpSolution, LpError> {
    let num_resources = shape.num_resources;
    let mut model = build_model(shape, kernels, num_resources);
    let mut objective = LinExpr::new();
    let mut max_vars = Vec::with_capacity(kernels.len());
    for (k, per_r) in model.kernel_usage.iter().enumerate() {
        let (s_k, _) = exact_max(&mut model.problem, &format!("S_{k}"), per_r, 2.0);
        objective.add_term(1.0, s_k);
        max_vars.push(s_k);
    }
    model.problem.set_objective(objective);
    let milp_opts = MilpOptions { max_nodes: 20_000, ..MilpOptions::default() };
    let solution = model.problem.solve_with(&SimplexOptions::default(), &milp_opts)?;
    let saturation: Vec<f64> = max_vars.iter().map(|&v| solution[v]).collect();
    let total_slack = saturation.iter().map(|&s| 1.0 - s).sum();
    let mapping = extract_mapping(shape, &model.edges, num_resources, &solution);
    Ok(BwpSolution { mapping, saturation, total_slack })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    /// Hand-built shape reproducing the toy machine: ADD on {0,1}, BSR on
    /// {1}, IMUL on {0} — resources: 0 = "port0-like" (IMUL private),
    /// 1 = "port1-like" (BSR private), 2 = shared r01.
    fn toy_shape() -> (ShapeMapping, Vec<(Microkernel, f64)>, InstId, InstId, InstId) {
        let add = InstId(0);
        let bsr = InstId(1);
        let imul = InstId(2);
        let mut shape = ShapeMapping { num_resources: 3, ..Default::default() };
        shape.allowed.insert(add, BTreeSet::from([2]));
        shape.allowed.insert(bsr, BTreeSet::from([1, 2]));
        shape.allowed.insert(imul, BTreeSet::from([0, 2]));
        // Ground truth IPCs on the toy machine.
        let kernels = vec![
            (Microkernel::single(add), 2.0),
            (Microkernel::single(bsr), 1.0),
            (Microkernel::single(imul), 1.0),
            (Microkernel::pair(add, 2, bsr, 1), 2.0),
            (Microkernel::pair(add, 2, imul, 1), 2.0),
            (Microkernel::pair(bsr, 1, imul, 1), 2.0),
            (Microkernel::from_counts([(add, 2), (bsr, 1), (imul, 1)]), 2.0),
        ];
        shape.kernels = kernels.clone();
        (shape, kernels, add, bsr, imul)
    }

    #[test]
    fn alternating_bwp_recovers_sensible_weights() {
        let (shape, kernels, add, bsr, imul) = toy_shape();
        let sol = solve_bwp(&shape, &kernels, &BwpConfig::default()).unwrap();
        let m = &sol.mapping;
        // ADD saturates the shared resource at 1/2 per instance (IPC 2).
        assert!((m.usage(add, crate::ResourceId(2)) - 0.5).abs() < 0.05, "{}", m.usage(add, crate::ResourceId(2)));
        // BSR's bottleneck is its private resource with weight ~1.
        assert!(m.usage(bsr, crate::ResourceId(1)) > 0.9);
        // IMUL's bottleneck is its private resource with weight ~1.
        assert!(m.usage(imul, crate::ResourceId(0)) > 0.9);
        // The model reproduces the benchmark IPCs reasonably well.
        for ((kernel, ipc), s) in kernels.iter().zip(&sol.saturation) {
            let predicted = m.ipc(kernel).unwrap_or(0.0);
            assert!(
                (predicted - ipc).abs() / ipc < 0.25,
                "kernel {kernel}: predicted {predicted}, measured {ipc} (S = {s})"
            );
        }
    }

    #[test]
    fn saturations_never_exceed_one() {
        let (shape, kernels, ..) = toy_shape();
        let sol = solve_bwp(&shape, &kernels, &BwpConfig::default()).unwrap();
        for &s in &sol.saturation {
            assert!(s <= 1.0 + 1e-6);
            assert!(s >= 0.0);
        }
        assert!(sol.total_slack >= -1e-9);
    }

    #[test]
    fn exact_bwp_is_at_least_as_good_as_alternating() {
        let (shape, kernels, ..) = toy_shape();
        let alternating = solve_bwp(&shape, &kernels, &BwpConfig::default()).unwrap();
        let exact = solve_bwp_exact(&shape, &kernels).unwrap();
        assert!(exact.total_slack <= alternating.total_slack + 1e-4,
            "exact {} vs alternating {}", exact.total_slack, alternating.total_slack);
    }

    #[test]
    fn empty_inputs_are_handled() {
        let shape = ShapeMapping::default();
        let sol = solve_bwp(&shape, &[], &BwpConfig::default()).unwrap();
        assert_eq!(sol.saturation.len(), 0);
        assert_eq!(sol.mapping.num_instructions(), 0);
    }
}
