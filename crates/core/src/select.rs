//! Basic-instruction selection (Algorithm 1, Sec. V-A).
//!
//! The core mapping is computed only for a small set `I_B` of *basic
//! instructions* — enough to expose every abstract resource, but few enough
//! that LP1's integer program stays small.  Selection proceeds in four steps:
//!
//! 1. **Low-IPC filter** — instructions with IPC below `1 − ε` use some
//!    resource more than once per instance and are deferred to the final
//!    LPAUX phase.
//! 2. **Equivalence classes** — instructions whose pair-benchmark behaviour
//!    is indistinguishable (`∀p. aapp ≈ bbpp`) are clustered (hierarchical
//!    clustering) and only one representative per class is kept.
//! 3. **Very basic instructions** — a maximal clique of pairwise *disjoint*
//!    instructions (pair IPC = sum of individual IPCs), scanned in the
//!    `<VB` order of the paper (larger disjoint-set first).  These are the
//!    instructions most likely to map to a single resource.
//! 4. **Greediest instructions** — the remaining slots (up to `n`) are
//!    filled with the instructions that dominate the `≼greedier` pre-order
//!    (`∀p. aapp ≥ bbpp`), i.e. those whose pair benchmarks are never slower
//!    than anybody else's — they touch many resources and enrich LP1.

use crate::quadratic::QuadraticCampaign;
use palmed_isa::InstId;
use palmed_stats::{hierarchical_clusters, Linkage};
use std::collections::BTreeSet;

/// Configuration of the basic-instruction selection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelectionConfig {
    /// Target number of basic instructions (`n` of Algorithm 1).
    pub target_count: usize,
    /// `ε` of the low-IPC filter: instructions with IPC `< 1 − ε` are
    /// excluded from the core mapping.
    pub low_ipc_epsilon: f64,
    /// Distance threshold of the equivalence-class clustering (in IPC units).
    pub cluster_epsilon: f64,
    /// Relative tolerance used by the disjointness test.
    pub disjoint_tolerance: f64,
}

impl Default for SelectionConfig {
    fn default() -> Self {
        SelectionConfig {
            target_count: 8,
            low_ipc_epsilon: 0.05,
            cluster_epsilon: 0.08,
            disjoint_tolerance: 0.05,
        }
    }
}

/// Result of the selection, keeping the intermediate sets that the later
/// phases (LP1 constraints) need.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Selection {
    /// The selected basic instructions `I_B = I_VB ∪ I_MF` (ordered).
    pub basic: Vec<InstId>,
    /// The "very basic" clique `I_VB`.
    pub very_basic: Vec<InstId>,
    /// The "most greedy" completion `I_MF`.
    pub most_greedy: Vec<InstId>,
    /// One representative per equivalence class (after the low-IPC filter).
    pub representatives: Vec<InstId>,
    /// For every representative, the members of its equivalence class.
    pub classes: Vec<Vec<InstId>>,
    /// Instructions rejected by the low-IPC filter (mapped later by LPAUX).
    pub low_ipc: Vec<InstId>,
}

impl Selection {
    /// The equivalence class a representative stands for, if any.
    pub fn class_of(&self, representative: InstId) -> Option<&[InstId]> {
        self.representatives
            .iter()
            .position(|&r| r == representative)
            .map(|idx| self.classes[idx].as_slice())
    }
}

/// Runs Algorithm 1 on the results of a quadratic campaign restricted to
/// `candidates` (typically the instructions of one ISA extension).
pub fn select_basic_instructions(
    campaign: &QuadraticCampaign,
    candidates: &[InstId],
    config: &SelectionConfig,
) -> Selection {
    let mut selection = Selection::default();

    // Step 1: low-IPC filter.
    let mut filtered: Vec<InstId> = Vec::new();
    for &a in candidates {
        match campaign.single_ipc(a) {
            Some(ipc) if ipc > 1.0 - config.low_ipc_epsilon => filtered.push(a),
            Some(_) => selection.low_ipc.push(a),
            None => selection.low_ipc.push(a),
        }
    }
    if filtered.is_empty() {
        return selection;
    }

    // Step 2: equivalence classes via hierarchical clustering on the
    // pair-benchmark feature vectors.
    let features: Vec<Vec<f64>> =
        filtered.iter().map(|&a| campaign.feature_vector(a, &filtered)).collect();
    let assignment = hierarchical_clusters(&features, config.cluster_epsilon, Linkage::Complete);
    let num_classes = assignment.iter().copied().max().map_or(0, |m| m + 1);
    let mut classes: Vec<Vec<InstId>> = vec![Vec::new(); num_classes];
    for (idx, &inst) in filtered.iter().enumerate() {
        classes[assignment[idx]].push(inst);
    }
    // Representative: highest-IPC member (ties broken by id) — a stable,
    // deterministic stand-in for the paper's centroid-based choice.
    let mut representatives: Vec<InstId> = Vec::with_capacity(num_classes);
    for members in &classes {
        let rep = *members
            .iter()
            .max_by(|&&a, &&b| {
                let ia = campaign.single_ipc(a).unwrap_or(0.0);
                let ib = campaign.single_ipc(b).unwrap_or(0.0);
                ia.partial_cmp(&ib).expect("finite IPC").then(b.cmp(&a))
            })
            .expect("non-empty class");
        representatives.push(rep);
    }
    selection.classes = classes;
    selection.representatives = representatives.clone();

    // Step 3: very basic instructions — maximal clique of disjoint
    // instructions, scanned in <VB order.
    let disjoint_set = |a: InstId| -> BTreeSet<InstId> {
        representatives
            .iter()
            .copied()
            .filter(|&b| b != a && campaign.are_disjoint(a, b, config.disjoint_tolerance))
            .collect()
    };
    let dj: Vec<(InstId, BTreeSet<InstId>)> =
        representatives.iter().map(|&a| (a, disjoint_set(a))).collect();
    let mut vb_order: Vec<usize> = (0..dj.len()).collect();
    vb_order.sort_by(|&x, &y| {
        // |Dj| descending, then higher individual IPC, then id for stability.
        dj[y].1
            .len()
            .cmp(&dj[x].1.len())
            .then_with(|| {
                let ix = campaign.single_ipc(dj[x].0).unwrap_or(0.0);
                let iy = campaign.single_ipc(dj[y].0).unwrap_or(0.0);
                iy.partial_cmp(&ix).expect("finite IPC")
            })
            .then_with(|| dj[x].0.cmp(&dj[y].0))
    });
    let mut very_basic: Vec<InstId> = Vec::new();
    for &idx in &vb_order {
        let (a, ref dj_a) = dj[idx];
        if very_basic.iter().all(|vb| dj_a.contains(vb)) {
            very_basic.push(a);
        }
        if very_basic.len() == config.target_count {
            break;
        }
    }
    selection.very_basic = very_basic.clone();

    // Step 4: complete with the greediest instructions.
    let mut most_greedy: Vec<InstId> = Vec::new();
    if very_basic.len() < config.target_count {
        // Linearise the ≼greedier pre-order by the average pair IPC: an
        // instruction that dominates another point-wise also has a larger
        // average, so sorting by the average respects the pre-order.
        let mut rest: Vec<InstId> =
            representatives.iter().copied().filter(|r| !very_basic.contains(r)).collect();
        let score = |a: InstId| -> f64 {
            let v = campaign.feature_vector(a, &representatives);
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            }
        };
        rest.sort_by(|&a, &b| {
            score(b).partial_cmp(&score(a)).expect("finite scores").then(a.cmp(&b))
        });
        for a in rest {
            if very_basic.len() + most_greedy.len() >= config.target_count {
                break;
            }
            most_greedy.push(a);
        }
    }
    selection.most_greedy = most_greedy;

    selection.basic = selection
        .very_basic
        .iter()
        .chain(selection.most_greedy.iter())
        .copied()
        .collect();
    selection
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quadratic::QuadraticConfig;
    use palmed_isa::InstId;
    use palmed_machine::{presets, AnalyticMeasurer};

    fn paper_selection(target: usize) -> (Selection, std::sync::Arc<palmed_isa::InstructionSet>) {
        let preset = presets::paper_ports016();
        let measurer = AnalyticMeasurer::new(preset.mapping_arc());
        let ids: Vec<InstId> = preset.instructions.ids().collect();
        let campaign =
            QuadraticCampaign::run(&measurer, &ids, QuadraticConfig::default(), |_, _| true);
        let config = SelectionConfig { target_count: target, ..SelectionConfig::default() };
        (select_basic_instructions(&campaign, &ids, &config), preset.instructions)
    }

    #[test]
    fn paper_example_selects_the_expected_basic_instructions() {
        // Sec. III-D: the heuristics pick DIVPS, BSR, JMP, JNLE and ADDSS.
        let (sel, insts) = paper_selection(5);
        let names: BTreeSet<&str> = sel.basic.iter().map(|&i| insts.name(i)).collect();
        for expected in ["DIVPS", "BSR", "JMP", "ADDSS", "JNLE"] {
            assert!(names.contains(expected), "missing {expected}; selected {names:?}");
        }
        assert_eq!(sel.basic.len(), 5);
    }

    #[test]
    fn very_basic_instructions_are_pairwise_disjoint() {
        let (sel, insts) = paper_selection(5);
        // DIVPS (p0), BSR (p1) and JMP (p6) are mutually disjoint; the clique
        // must contain at least these three single-port instructions.
        let names: BTreeSet<&str> = sel.very_basic.iter().map(|&i| insts.name(i)).collect();
        assert!(names.contains("DIVPS"));
        assert!(names.contains("BSR"));
        assert!(names.contains("JMP"));
    }

    #[test]
    fn no_low_ipc_instruction_on_the_pedagogical_machine() {
        let (sel, _) = paper_selection(5);
        assert!(sel.low_ipc.is_empty());
    }

    #[test]
    fn low_ipc_instructions_are_deferred() {
        let preset = presets::skl_sp(&palmed_isa::InventoryConfig::small());
        let measurer = AnalyticMeasurer::new(preset.mapping_arc());
        let ids: Vec<InstId> = preset.instructions.ids_with_extension(palmed_isa::Extension::BaseIsa);
        let campaign =
            QuadraticCampaign::run(&measurer, &ids, QuadraticConfig::default(), |_, _| true);
        let sel = select_basic_instructions(&campaign, &ids, &SelectionConfig::default());
        let idiv = preset.instructions.find("IDIV").unwrap();
        assert!(sel.low_ipc.contains(&idiv), "the divider (IPC 1/6) must be deferred");
        assert!(!sel.basic.contains(&idiv));
    }

    #[test]
    fn equivalent_instructions_collapse_to_one_representative() {
        // On the SKL-like machine every IntAlu mnemonic behaves identically;
        // the equivalence classes must merge them.
        let preset = presets::skl_sp(&palmed_isa::InventoryConfig::small());
        let measurer = AnalyticMeasurer::new(preset.mapping_arc());
        let add = preset.instructions.find("ADD").unwrap();
        let sub = preset.instructions.find("SUB").unwrap();
        let xor = preset.instructions.find("XOR").unwrap();
        let bsr = preset.instructions.find("BSR").unwrap();
        let jmp = preset.instructions.find("JMP").unwrap();
        let ids = vec![add, sub, xor, bsr, jmp];
        let campaign =
            QuadraticCampaign::run(&measurer, &ids, QuadraticConfig::default(), |_, _| true);
        let sel = select_basic_instructions(&campaign, &ids, &SelectionConfig::default());
        // ADD/SUB/XOR form one class; BSR and JMP their own.
        assert_eq!(sel.representatives.len(), 3, "classes: {:?}", sel.classes);
        let alu_class = sel
            .classes
            .iter()
            .find(|c| c.contains(&add))
            .expect("ADD belongs to a class");
        assert!(alu_class.contains(&sub) && alu_class.contains(&xor));
    }

    #[test]
    fn target_count_is_respected() {
        let (sel, _) = paper_selection(3);
        assert!(sel.basic.len() <= 3);
        let (sel5, _) = paper_selection(5);
        assert!(sel5.basic.len() <= 5);
        assert!(sel5.basic.len() >= sel.basic.len());
    }

    #[test]
    fn empty_candidate_list_gives_empty_selection() {
        let preset = presets::paper_ports016();
        let measurer = AnalyticMeasurer::new(preset.mapping_arc());
        let campaign =
            QuadraticCampaign::run(&measurer, &[], QuadraticConfig::default(), |_, _| true);
        let sel = select_basic_instructions(&campaign, &[], &SelectionConfig::default());
        assert!(sel.basic.is_empty());
        assert!(sel.low_ipc.is_empty());
    }
}
