//! Saturating kernels (second half of Algorithm 2).
//!
//! For every abstract resource `r` of the core mapping, Palmed keeps one
//! *saturating kernel* `sat[r]`: a microkernel whose execution keeps `r` at
//! (or very near) 100 % utilisation while loading the other resources as
//! little as possible.  The LPAUX phase then measures every remaining
//! instruction *against* these kernels: adding an instruction to a benchmark
//! that already saturates `r` slows the benchmark down by exactly the
//! instruction's own usage of `r`, which is what makes the per-instruction
//! completion a sequence of tiny independent LPs (and what Theorem A.3
//! proves correct).

use crate::conjunctive::{ConjunctiveMapping, ResourceId};
use crate::lp1::ShapeMapping;
use palmed_isa::Microkernel;

/// Per-resource saturating kernels.
#[derive(Debug, Clone, Default)]
pub struct SaturatingKernels {
    /// `kernels[r]` saturates resource `r` of the core mapping (may be
    /// `None` when no benchmark loads the resource at all — an unused
    /// resource that will be pruned).
    pub kernels: Vec<Option<Microkernel>>,
}

impl SaturatingKernels {
    /// The saturating kernel of a resource, if any.
    pub fn kernel_for(&self, r: ResourceId) -> Option<&Microkernel> {
        self.kernels.get(r.index()).and_then(Option::as_ref)
    }

    /// Number of resources with a saturating kernel.
    pub fn num_saturated(&self) -> usize {
        self.kernels.iter().filter(|k| k.is_some()).count()
    }
}

/// Total consumption of a kernel under a mapping: `Σ_i σ_i Σ_r ρ_{i,r}`,
/// normalised per instruction.  The saturating kernel of a resource is the
/// candidate with the *lowest* consumption, i.e. the one that disturbs other
/// resources the least (`cons(K)` in the paper).
pub fn consumption(mapping: &ConjunctiveMapping, kernel: &Microkernel) -> f64 {
    let total: f64 =
        kernel.iter().map(|(i, c)| c as f64 * mapping.consumption(i)).sum();
    total / kernel.total_instructions().max(1) as f64
}

/// Selects a saturating kernel for every resource of `mapping` among the
/// benchmarks accumulated by LP1/LP2, completing with freshly built kernels
/// when no measured benchmark saturates a resource.
///
/// A benchmark saturates `r` when its predicted relative usage of `r` is at
/// least `saturation_threshold` (the paper requires exactly 1; measurement
/// noise makes a slightly lower bar more robust).
pub fn select_saturating_kernels(
    mapping: &ConjunctiveMapping,
    shape: &ShapeMapping,
    saturation_threshold: f64,
) -> SaturatingKernels {
    let num_resources = mapping.num_resources();
    let mut kernels: Vec<Option<Microkernel>> = vec![None; num_resources];

    for r in mapping.resources() {
        let mut best: Option<(&Microkernel, f64)> = None;
        for (kernel, ipc) in &shape.kernels {
            let load = mapping.kernel_load(kernel);
            let usage = load[r.index()] * ipc / kernel.total_instructions() as f64;
            if usage + 1e-9 < saturation_threshold {
                continue;
            }
            let cons = consumption(mapping, kernel);
            if best.is_none_or(|(_, c)| cons < c) {
                best = Some((kernel, cons));
            }
        }
        if let Some((kernel, _)) = best {
            kernels[r.index()] = Some(kernel.clone());
        } else {
            // Fall back: build a kernel from the users of the resource,
            // weighted by how much of it each uses (heavier users repeated
            // more to reach saturation quickly).
            let users: Vec<_> = mapping
                .instructions()
                .filter(|&i| mapping.usage(i, r) > 1e-9)
                .collect();
            if users.is_empty() {
                continue;
            }
            let kernel = Microkernel::from_proportions(
                users.iter().map(|&i| {
                    let u = mapping.usage(i, r);
                    // Repeat inversely to usage so the mix is balanced.
                    (i, 1.0 / u.max(1e-3))
                }),
                0.05,
                64,
            );
            if !kernel.is_empty() {
                kernels[r.index()] = Some(kernel);
            }
        }
    }
    SaturatingKernels { kernels }
}

#[cfg(test)]
mod tests {
    use super::*;
    use palmed_isa::InstId;
    use std::collections::BTreeSet;

    /// The toy mapping of the LP2 tests: ADD -> r2 (0.5), BSR -> r1 (1.0) and
    /// r2 (0.5), IMUL -> r0 (1.0) and r2 (0.5).
    fn toy() -> (ConjunctiveMapping, ShapeMapping, InstId, InstId, InstId) {
        let add = InstId(0);
        let bsr = InstId(1);
        let imul = InstId(2);
        let mut mapping = ConjunctiveMapping::with_resources(3);
        mapping.set_usage(add, vec![0.0, 0.0, 0.5]);
        mapping.set_usage(bsr, vec![0.0, 1.0, 0.5]);
        mapping.set_usage(imul, vec![1.0, 0.0, 0.5]);
        let mut shape = ShapeMapping { num_resources: 3, ..Default::default() };
        shape.allowed.insert(add, BTreeSet::from([2]));
        shape.allowed.insert(bsr, BTreeSet::from([1, 2]));
        shape.allowed.insert(imul, BTreeSet::from([0, 2]));
        shape.kernels = vec![
            (Microkernel::single(add), 2.0),
            (Microkernel::single(bsr), 1.0),
            (Microkernel::single(imul), 1.0),
            (Microkernel::pair(add, 2, bsr, 1), 2.0),
            (Microkernel::pair(bsr, 1, imul, 1), 2.0),
        ];
        (mapping, shape, add, bsr, imul)
    }

    #[test]
    fn every_resource_gets_a_saturating_kernel() {
        let (mapping, shape, ..) = toy();
        let sat = select_saturating_kernels(&mapping, &shape, 0.95);
        assert_eq!(sat.num_saturated(), 3);
    }

    #[test]
    fn private_resources_are_saturated_by_their_owner_alone() {
        let (mapping, shape, _, bsr, imul) = toy();
        let sat = select_saturating_kernels(&mapping, &shape, 0.95);
        // r1 is BSR's private resource: the lowest-consumption saturating
        // benchmark is BSR alone (cons 1.5), not the BSR+IMUL pair (cons 2.25... /2).
        let k1 = sat.kernel_for(ResourceId(1)).unwrap();
        assert!(k1.contains(bsr));
        assert_eq!(k1.num_distinct(), 1);
        let k0 = sat.kernel_for(ResourceId(0)).unwrap();
        assert!(k0.contains(imul));
        assert_eq!(k0.num_distinct(), 1);
    }

    #[test]
    fn shared_resource_prefers_the_cheapest_saturating_benchmark() {
        let (mapping, shape, add, ..) = toy();
        let sat = select_saturating_kernels(&mapping, &shape, 0.95);
        // r2 is saturated by `ADD` alone (usage 0.5 * IPC 2 = 1, cons 0.5) —
        // cheaper than any pair.
        let k2 = sat.kernel_for(ResourceId(2)).unwrap();
        assert!(k2.contains(add));
        assert_eq!(k2.num_distinct(), 1);
    }

    #[test]
    fn missing_saturating_benchmark_triggers_fallback_construction() {
        let (mapping, mut shape, ..) = toy();
        shape.kernels.clear(); // no measured benchmark at all
        let sat = select_saturating_kernels(&mapping, &shape, 0.95);
        // Fallback kernels are built from the mapping itself.
        assert_eq!(sat.num_saturated(), 3);
    }

    #[test]
    fn consumption_is_per_instruction_average() {
        let (mapping, _, add, bsr, _) = toy();
        let k = Microkernel::pair(add, 2, bsr, 1);
        // (2*0.5 + 1*1.5) / 3
        assert!((consumption(&mapping, &k) - (2.0 * 0.5 + 1.5) / 3.0).abs() < 1e-12);
    }
}
