//! LPAUX — completing the mapping, one instruction at a time (Algorithm 5).
//!
//! Once the core mapping (resources + weights for the basic instructions) is
//! frozen, every remaining instruction `i` is characterised independently:
//!
//! 1. for every resource `r`, build the benchmark
//!    `K_sat(i, r) = i^⌈ipc(i)⌉ · sat[r]^L · sat[r]` — the instruction mixed
//!    with `L + 1` copies of the kernel that saturates `r` — and measure it;
//! 2. solve a small LP whose unknowns are only `ρ_{i,r}` (the core edges are
//!    constants): the measured slowdown of each saturated benchmark reveals
//!    how much of `r` the instruction consumes (Theorem A.3 guarantees that
//!    `r` stays the bottleneck, so the signal is clean).
//!
//! Each instruction costs `|R|` measurements and one LP with `|R|` variables,
//! which is what lets Palmed map thousands of instructions in hours where
//! PMEvo's global evolutionary search takes days.

use crate::conjunctive::ConjunctiveMapping;
use crate::saturate::SaturatingKernels;
use palmed_isa::{InstId, Microkernel};
use palmed_lp::{revised, Basis, LinExpr, LpError, Problem, Sense, SimplexOptions};
use palmed_machine::Measurer;

/// Configuration of the per-instruction completion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompletionConfig {
    /// The `L` of `K_sat(i, r) = i i sat[r]^L sat[r]` (paper: 4).
    pub saturating_repeat: u32,
    /// Instructions with measured IPC below this threshold are skipped
    /// entirely (not benchmarkable / not interesting; paper: 0.05).
    pub min_ipc: f64,
    /// Maximum instructions per generated benchmark iteration.
    pub max_kernel_size: u32,
}

impl Default for CompletionConfig {
    fn default() -> Self {
        CompletionConfig { saturating_repeat: 4, min_ipc: 0.05, max_kernel_size: 256 }
    }
}

/// Outcome of mapping a single instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum CompletionOutcome {
    /// The instruction was added to the mapping.
    Mapped,
    /// The instruction was skipped (below the IPC threshold).
    SkippedLowIpc(f64),
    /// The LP could not be solved; the instruction stays unmapped.
    Failed(LpError),
}

/// The `K_sat(i, r)` benchmark of Algorithm 5.
pub fn completion_kernel(
    inst: InstId,
    inst_ipc: f64,
    sat: &Microkernel,
    config: &CompletionConfig,
) -> Microkernel {
    let mut kernel = Microkernel::new();
    let reps = inst_ipc.round().max(1.0) as u32;
    kernel.add(inst, reps);
    kernel.merge(&sat.scaled(config.saturating_repeat + 1));
    kernel
}

/// Maps one instruction against the frozen core mapping, mutating `mapping`
/// on success.
pub fn map_instruction<M: Measurer>(
    measurer: &M,
    mapping: &mut ConjunctiveMapping,
    saturating: &SaturatingKernels,
    inst: InstId,
    config: &CompletionConfig,
) -> CompletionOutcome {
    map_instruction_warm(measurer, mapping, saturating, inst, config, &mut None)
}

/// [`map_instruction`] with an explicit warm-start slot.
///
/// Consecutive completion LPs share their structure — same `|R|` unknowns,
/// same constraint layout, only the measured coefficients differ — so
/// [`complete_mapping`] threads the previous instruction's optimal [`Basis`]
/// through this slot and each solve typically starts one or two pivots from
/// its optimum.  On success the slot is refreshed with the new basis.
pub fn map_instruction_warm<M: Measurer>(
    measurer: &M,
    mapping: &mut ConjunctiveMapping,
    saturating: &SaturatingKernels,
    inst: InstId,
    config: &CompletionConfig,
    warm: &mut Option<Basis>,
) -> CompletionOutcome {
    if mapping.supports(inst) {
        return CompletionOutcome::Mapped;
    }
    let inst_ipc = measurer.ipc(&Microkernel::single(inst));
    if inst_ipc < config.min_ipc {
        return CompletionOutcome::SkippedLowIpc(inst_ipc);
    }

    let num_resources = mapping.num_resources();
    let mut problem = Problem::new(Sense::Maximize);
    // Unknown usages of the new instruction.  The upper bound is the
    // instruction's own execution time 1/ipc (it cannot use any resource for
    // longer than it takes to execute).
    let upper = (1.0 / inst_ipc).max(1.0) * 1.5;
    let rho: Vec<_> = (0..num_resources)
        .map(|r| problem.add_var(format!("rho_{inst}_{r}"), 0.0, upper))
        .collect();

    // The instruction alone must be explained: max_r rho_r = 1/ipc, relaxed
    // to "no resource exceeds 1/ipc" plus an objective pushing usage up.
    for &v in &rho {
        problem.add_le(problem.expr().term(1.0, v), 1.0 / inst_ipc + 1e-6);
    }

    let mut objective = LinExpr::new();
    let mut any_kernel = false;
    for r in 0..num_resources {
        let Some(sat_kernel) = saturating.kernels.get(r).and_then(Option::as_ref) else {
            continue;
        };
        let kernel = completion_kernel(inst, inst_ipc, sat_kernel, config);
        let ipc = measurer.ipc(&kernel);
        if ipc <= 0.0 {
            continue;
        }
        any_kernel = true;
        let scale = ipc / kernel.total_instructions() as f64;
        let inst_count = kernel.multiplicity(inst) as f64;
        // Usage of every resource r' in this benchmark:
        //   (inst_count * rho_{inst,r'} + fixed core load) * scale  <= 1
        for (rp, &rho_rp) in rho.iter().enumerate() {
            let fixed: f64 = kernel
                .iter()
                .filter(|&(i, _)| i != inst)
                .map(|(i, c)| c as f64 * mapping.usage(i, crate::ResourceId(rp as u32)))
                .sum();
            let mut usage = LinExpr::constant(fixed * scale);
            usage.add_term(inst_count * scale, rho_rp);
            // Real measurements (greedy scheduling, quantisation, noise) can
            // make the benchmark slightly faster than the frozen core mapping
            // allows, which would render the nominal `<= 1` bound infeasible;
            // the bound is therefore relaxed to the already-committed core
            // load, acknowledging sub-saturation exactly like LP2 does.
            problem.add_le(usage.clone(), (fixed * scale).max(1.0));
            if rp == r {
                // The designated resource is the bottleneck of this benchmark
                // (Theorem A.3); maximising its usage recovers rho_{inst,r}.
                objective.add_scaled(1.0, &usage);
            }
        }
    }
    if !any_kernel {
        // No saturating kernel available: fall back to the single-instruction
        // information only (the instruction gets 1/ipc on a fresh view of its
        // heaviest resource — here we simply spread it on resource 0).
        let mut usage = vec![0.0; num_resources];
        if num_resources > 0 {
            usage[0] = 1.0 / inst_ipc;
        }
        mapping.set_usage(inst, usage);
        return CompletionOutcome::Mapped;
    }
    // Also reward explaining the instruction's own throughput.
    for &v in &rho {
        objective.add_term(1e-3, v);
    }
    problem.set_objective(objective);

    let solved =
        revised::solve_with_warm_start(&problem, &SimplexOptions::default(), warm.as_ref());
    match solved {
        Ok(info) => {
            let usage: Vec<f64> = rho.iter().map(|&v| info.solution[v].max(0.0)).collect();
            mapping.set_usage(inst, usage);
            *warm = Some(info.basis);
            CompletionOutcome::Mapped
        }
        Err(e) => CompletionOutcome::Failed(e),
    }
}

/// Maps every instruction of `instructions` that is not yet in the mapping.
/// Returns, per instruction, the outcome.
pub fn complete_mapping<M: Measurer>(
    measurer: &M,
    mapping: &mut ConjunctiveMapping,
    saturating: &SaturatingKernels,
    instructions: &[InstId],
    config: &CompletionConfig,
) -> Vec<(InstId, CompletionOutcome)> {
    // One rolling basis across the sweep: every completion LP has the same
    // shape, so each instruction warm-starts from its predecessor.
    let mut warm: Option<Basis> = None;
    instructions
        .iter()
        .map(|&inst| {
            (inst, map_instruction_warm(measurer, mapping, saturating, inst, config, &mut warm))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::saturate::select_saturating_kernels;
    use crate::lp1::ShapeMapping;
    use palmed_isa::Microkernel;
    use palmed_machine::{presets, AnalyticMeasurer, Measurer};
    use std::collections::BTreeSet;

    /// Core mapping for the toy machine covering ADD / BSR / IMUL, with the
    /// STORE instruction (1 µOP on each port) left for LPAUX.
    fn toy_core() -> (
        AnalyticMeasurer,
        ConjunctiveMapping,
        SaturatingKernels,
        std::sync::Arc<palmed_isa::InstructionSet>,
    ) {
        let preset = presets::toy_two_port();
        let measurer = AnalyticMeasurer::new(preset.mapping_arc());
        let insts = preset.instructions.clone();
        let add = insts.find("ADD").unwrap();
        let bsr = insts.find("BSR").unwrap();
        let imul = insts.find("IMUL").unwrap();
        let mut mapping = ConjunctiveMapping::with_resources(3);
        // r0 = port0-like (IMUL), r1 = port1-like (BSR), r2 = r01-like.
        mapping.set_usage(add, vec![0.0, 0.0, 0.5]);
        mapping.set_usage(bsr, vec![0.0, 1.0, 0.5]);
        mapping.set_usage(imul, vec![1.0, 0.0, 0.5]);
        let mut shape = ShapeMapping { num_resources: 3, ..Default::default() };
        shape.allowed.insert(add, BTreeSet::from([2]));
        shape.allowed.insert(bsr, BTreeSet::from([1, 2]));
        shape.allowed.insert(imul, BTreeSet::from([0, 2]));
        shape.kernels = vec![
            (Microkernel::single(add), measurer.ipc(&Microkernel::single(add))),
            (Microkernel::single(bsr), measurer.ipc(&Microkernel::single(bsr))),
            (Microkernel::single(imul), measurer.ipc(&Microkernel::single(imul))),
        ];
        let sat = select_saturating_kernels(&mapping, &shape, 0.95);
        (measurer, mapping, sat, insts)
    }

    #[test]
    fn completion_kernel_has_expected_shape() {
        let sat = Microkernel::single(InstId(7));
        let k = completion_kernel(InstId(3), 2.0, &sat, &CompletionConfig::default());
        assert_eq!(k.multiplicity(InstId(3)), 2);
        assert_eq!(k.multiplicity(InstId(7)), 5); // L + 1 = 5 copies of sat
    }

    #[test]
    fn store_instruction_gets_mapped_and_predicts_well() {
        let (measurer, mut mapping, sat, insts) = toy_core();
        let store = insts.find("STORE").unwrap();
        let outcome = map_instruction(
            &measurer,
            &mut mapping,
            &sat,
            store,
            &CompletionConfig::default(),
        );
        assert_eq!(outcome, CompletionOutcome::Mapped);
        assert!(mapping.supports(store));
        // STORE alone has IPC 1 (two µOPs, one per port); the completed
        // mapping should reproduce that within a reasonable margin.
        let predicted = mapping.ipc(&Microkernel::single(store)).unwrap();
        let native = measurer.ipc(&Microkernel::single(store));
        assert!(
            (predicted - native).abs() / native < 0.35,
            "predicted {predicted}, native {native}"
        );
        // And a mix with ADD should stay within a reasonable band too.
        let add = insts.find("ADD").unwrap();
        let mix = Microkernel::pair(store, 1, add, 2);
        let predicted_mix = mapping.ipc(&mix).unwrap();
        let native_mix = measurer.ipc(&mix);
        assert!(
            (predicted_mix - native_mix).abs() / native_mix < 0.35,
            "mix predicted {predicted_mix}, native {native_mix}"
        );
    }

    #[test]
    fn already_mapped_instructions_are_untouched() {
        let (measurer, mut mapping, sat, insts) = toy_core();
        let add = insts.find("ADD").unwrap();
        let before = mapping.usage_vector(add).unwrap().to_vec();
        let outcome =
            map_instruction(&measurer, &mut mapping, &sat, add, &CompletionConfig::default());
        assert_eq!(outcome, CompletionOutcome::Mapped);
        assert_eq!(mapping.usage_vector(add).unwrap(), before.as_slice());
    }

    #[test]
    fn complete_mapping_processes_every_instruction() {
        let (measurer, mut mapping, sat, insts) = toy_core();
        let all: Vec<InstId> = insts.ids().collect();
        let outcomes =
            complete_mapping(&measurer, &mut mapping, &sat, &all, &CompletionConfig::default());
        assert_eq!(outcomes.len(), all.len());
        assert!(outcomes.iter().all(|(_, o)| matches!(o, CompletionOutcome::Mapped)));
        assert!((mapping.coverage(&insts) - 1.0).abs() < 1e-9);
    }
}
