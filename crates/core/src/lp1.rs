//! LP1 — discovering the *shape* of the core mapping (Algorithm 3).
//!
//! The shape of a mapping is the number of abstract resources and the set of
//! edges that *may* carry a non-zero weight; LP2 later assigns the weights.
//! The paper formulates shape discovery as an integer linear program whose
//! constraints encode what the seed benchmarks (`a`, `aabb`, `a^M b`) reveal:
//!
//! * every *very basic* instruction owns a resource no other very basic
//!   instruction touches;
//! * every *greedy* instruction shares a resource with each instruction it is
//!   not disjoint from;
//! * in every benchmark, each *saturating* instruction (one whose own
//!   throughput already explains the benchmark's execution time) owns a
//!   resource unused by the rest of the benchmark; benchmarks without a
//!   saturating instruction share a common resource instead;
//!
//! with the objective of minimising the number of resources.
//!
//! Two solution strategies are provided:
//!
//! * [`shape_via_ilp`] — the faithful ILP (binary `ρ_{i,r}`, big-M encodings
//!   of the existential constraints), exact but exponential; practical for
//!   small basic sets only.
//! * [`shape_via_cliques`] — a constructive algorithm that produces the same
//!   family of shapes in polynomial time: one private resource per very
//!   basic instruction, plus one shared resource per maximal clique of the
//!   "not disjoint" graph, closed under the same enrichment loop.  This is
//!   the scalable path used by the default pipeline (see DESIGN.md for the
//!   substitution rationale).
//!
//! Both strategies finish with the paper's enrichment loop: for every
//! discovered resource, a benchmark combining all its users (weighted by
//! their IPC) is generated, measured and fed back until no new benchmark
//! appears.

use crate::quadratic::QuadraticCampaign;
use crate::select::Selection;
use palmed_isa::{InstId, Microkernel};
use palmed_lp::minimax::exists_zero;
use palmed_lp::{MilpOptions, Problem, Sense, SimplexOptions};
use palmed_machine::Measurer;
use std::collections::{BTreeMap, BTreeSet};

/// Strategy used to find the mapping shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShapeStrategy {
    /// Choose automatically: ILP for very small basic sets, cliques otherwise.
    #[default]
    Auto,
    /// Always use the integer program (exact, exponential).
    Ilp,
    /// Always use the constructive clique-based algorithm (scalable).
    Constructive,
}

/// Configuration of the shape-discovery phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShapeConfig {
    /// Strategy selection.
    pub strategy: ShapeStrategy,
    /// Upper bound on the number of abstract resources the ILP may use.
    pub max_resources: usize,
    /// Basic sets up to this size use the ILP when the strategy is `Auto`.
    pub ilp_size_limit: usize,
    /// Relative tolerance when testing disjointness / saturation.
    pub tolerance: f64,
    /// Maximum number of enrichment iterations.
    pub max_enrichment_rounds: usize,
    /// Relative rounding tolerance for generated benchmark coefficients.
    pub coefficient_tolerance: f64,
    /// Maximum size (instructions per iteration) of generated benchmarks.
    pub max_kernel_size: u32,
}

impl Default for ShapeConfig {
    fn default() -> Self {
        ShapeConfig {
            strategy: ShapeStrategy::Auto,
            max_resources: 12,
            ilp_size_limit: 3,
            tolerance: 0.05,
            max_enrichment_rounds: 4,
            coefficient_tolerance: 0.05,
            max_kernel_size: 64,
        }
    }
}

/// The discovered shape: which instruction may use which resource, plus the
/// benchmark set accumulated along the way (reused by LP2).
#[derive(Debug, Clone, Default)]
pub struct ShapeMapping {
    /// Number of abstract resources.
    pub num_resources: usize,
    /// Allowed edges: for every basic instruction, the set of resource
    /// indices it may map to.
    pub allowed: BTreeMap<InstId, BTreeSet<usize>>,
    /// Benchmarks (kernel, measured IPC) available to LP2.
    pub kernels: Vec<(Microkernel, f64)>,
}

impl ShapeMapping {
    /// Resources instruction `i` may use (empty set when unknown).
    pub fn allowed_resources(&self, inst: InstId) -> BTreeSet<usize> {
        self.allowed.get(&inst).cloned().unwrap_or_default()
    }

    /// Instructions allowed to use resource `r`.
    pub fn users_of(&self, r: usize) -> Vec<InstId> {
        self.allowed
            .iter()
            .filter(|(_, set)| set.contains(&r))
            .map(|(&i, _)| i)
            .collect()
    }

    fn push_kernel_if_new(&mut self, kernel: Microkernel, ipc: f64) -> bool {
        if kernel.is_empty() || self.kernels.iter().any(|(k, _)| *k == kernel) {
            return false;
        }
        self.kernels.push((kernel, ipc));
        true
    }
}

/// Seed benchmark set of Algorithm 2: `a`, `aabb` and `a^M b` for all pairs
/// of basic instructions, measured on `measurer`.
pub fn seed_kernels<M: Measurer>(
    measurer: &M,
    campaign: &QuadraticCampaign,
    basic: &[InstId],
) -> Vec<(Microkernel, f64)> {
    let mut kernels: Vec<(Microkernel, f64)> = Vec::new();
    let mut push = |k: Microkernel, ipc: f64| {
        if !kernels.iter().any(|(existing, _)| *existing == k) {
            kernels.push((k, ipc));
        }
    };
    for &a in basic {
        let k = Microkernel::single(a);
        let ipc = campaign.single_ipc(a).unwrap_or_else(|| measurer.ipc(&k));
        push(k, ipc);
    }
    for (i, &a) in basic.iter().enumerate() {
        for &b in &basic[i + 1..] {
            let pair = campaign.pair_kernel(a, b);
            let pair_ipc = campaign.pair_ipc(a, b).unwrap_or_else(|| measurer.ipc(&pair));
            push(pair, pair_ipc);
            let asym = campaign.asymmetric_kernel(a, b);
            let asym_ipc = measurer.ipc(&asym);
            push(asym, asym_ipc);
            let asym_rev = campaign.asymmetric_kernel(b, a);
            let asym_rev_ipc = measurer.ipc(&asym_rev);
            push(asym_rev, asym_rev_ipc);
        }
    }
    kernels
}

/// Instructions of `kernel` that saturate it: their own throughput already
/// accounts for the kernel's execution time (`σ_i / ipc(i) ≈ t(K)`).
fn saturating_instructions(
    campaign: &QuadraticCampaign,
    kernel: &Microkernel,
    kernel_ipc: f64,
    tolerance: f64,
) -> Vec<InstId> {
    if kernel_ipc <= 0.0 {
        return Vec::new();
    }
    let t_kernel = kernel.total_instructions() as f64 / kernel_ipc;
    kernel
        .iter()
        .filter(|&(inst, count)| {
            campaign.single_ipc(inst).is_some_and(|ipc| {
                ipc > 0.0 && {
                    let t_inst = count as f64 / ipc;
                    (t_inst - t_kernel).abs() <= tolerance * t_kernel
                }
            })
        })
        .map(|(inst, _)| inst)
        .collect()
}

/// The faithful ILP of Algorithm 3.
///
/// # Errors
///
/// Returns the LP error when the integer program cannot be solved within the
/// default solver budgets (the caller usually falls back to
/// [`shape_via_cliques`]).
pub fn shape_via_ilp<M: Measurer>(
    measurer: &M,
    campaign: &QuadraticCampaign,
    selection: &Selection,
    config: &ShapeConfig,
) -> Result<ShapeMapping, palmed_lp::LpError> {
    let basic = &selection.basic;
    let kernels = seed_kernels(measurer, campaign, basic);
    let n_res = config.max_resources.min(2 * basic.len().max(1));

    let mut problem = Problem::new(Sense::Minimize);
    // rho[i][r]: instruction i may use resource r.
    let rho: Vec<Vec<_>> = basic
        .iter()
        .map(|i| (0..n_res).map(|r| problem.add_bool_var(format!("rho_{i}_{r}"))).collect())
        .collect();
    // u[r]: resource r is used at all.
    let used: Vec<_> = (0..n_res).map(|r| problem.add_bool_var(format!("u_{r}"))).collect();
    let index_of = |inst: InstId| basic.iter().position(|&b| b == inst).expect("basic inst");

    for (i, row) in rho.iter().enumerate() {
        let mut any = problem.expr();
        for (r, &v) in row.iter().enumerate() {
            // rho_{i,r} <= u_r
            problem.add_le(problem.expr().term(1.0, v).term(-1.0, used[r]), 0.0);
            any.add_term(1.0, v);
        }
        // every basic instruction uses at least one resource
        problem.add_ge(any, 1.0);
        let _ = i;
    }
    // Symmetry breaking: resources are used in order.
    for r in 1..n_res {
        problem.add_le(problem.expr().term(1.0, used[r]).term(-1.0, used[r - 1]), 0.0);
    }

    let big_m = basic.len() as f64 + 2.0;
    // Very basic instructions own a private resource.
    for &i in &selection.very_basic {
        if !basic.contains(&i) {
            continue;
        }
        let ii = index_of(i);
        let exprs: Vec<_> = (0..n_res)
            .map(|r| {
                let mut e = palmed_lp::LinExpr::constant(1.0).term(-1.0, rho[ii][r]);
                for &j in &selection.very_basic {
                    if j != i && basic.contains(&j) {
                        e.add_term(1.0, rho[index_of(j)][r]);
                    }
                }
                e
            })
            .collect();
        exists_zero(&mut problem, &format!("vb_{i}"), &exprs, big_m);
    }
    // Greedy instructions share a resource with every non-disjoint partner.
    for &i in &selection.most_greedy {
        if !basic.contains(&i) {
            continue;
        }
        let ii = index_of(i);
        let partners: Vec<InstId> = basic
            .iter()
            .copied()
            .filter(|&j| j != i && !campaign.are_disjoint(i, j, config.tolerance))
            .collect();
        if partners.is_empty() {
            continue;
        }
        let exprs: Vec<_> = (0..n_res)
            .map(|r| {
                let mut e = palmed_lp::LinExpr::constant(1.0).term(-1.0, rho[ii][r]);
                for &j in &partners {
                    e.add_constant(1.0);
                    e.add_term(-1.0, rho[index_of(j)][r]);
                }
                e
            })
            .collect();
        exists_zero(&mut problem, &format!("mf_{i}"), &exprs, big_m);
    }
    // Benchmark-derived constraints.  Only the `aabb` pair benchmarks are
    // encoded as ILP constraints: the asymmetric `a^M b` benchmarks mostly
    // guard the continuous LP2 against degenerate weights and would double
    // the number of big-M selectors here for no extra shape information.
    let mut constraint_kernels: Vec<(Microkernel, f64)> = Vec::new();
    for (i, &a) in basic.iter().enumerate() {
        for &b in &basic[i + 1..] {
            if let Some(ipc) = campaign.pair_ipc(a, b) {
                constraint_kernels.push((campaign.pair_kernel(a, b), ipc));
            }
        }
    }
    for (k_idx, (kernel, ipc)) in constraint_kernels.iter().enumerate() {
        if kernel.num_distinct() < 2 {
            continue;
        }
        let saturating = saturating_instructions(campaign, kernel, *ipc, config.tolerance);
        if saturating.is_empty() {
            // All instructions of the kernel share a resource.
            let members: Vec<InstId> = kernel.instructions().collect();
            let exprs: Vec<_> = (0..n_res)
                .map(|r| {
                    let mut e = palmed_lp::LinExpr::constant(0.0);
                    for &j in &members {
                        e.add_constant(1.0);
                        e.add_term(-1.0, rho[index_of(j)][r]);
                    }
                    e
                })
                .collect();
            exists_zero(&mut problem, &format!("share_{k_idx}"), &exprs, big_m);
        } else {
            for &sat in &saturating {
                let others: Vec<InstId> =
                    kernel.instructions().filter(|&j| j != sat).collect();
                let exprs: Vec<_> = (0..n_res)
                    .map(|r| {
                        let mut e =
                            palmed_lp::LinExpr::constant(1.0).term(-1.0, rho[index_of(sat)][r]);
                        for &j in &others {
                            e.add_term(1.0, rho[index_of(j)][r]);
                        }
                        e
                    })
                    .collect();
                exists_zero(&mut problem, &format!("sat_{k_idx}_{sat}"), &exprs, big_m);
            }
        }
    }

    // Objective: minimise the number of resources (plus a tiny edge penalty to
    // keep the shape sparse among optimal solutions).
    let mut objective = problem.expr();
    for &u in &used {
        objective.add_term(1.0, u);
    }
    for row in &rho {
        for &v in row {
            objective.add_term(0.01, v);
        }
    }
    problem.set_objective(objective);

    let milp_opts = MilpOptions { max_nodes: 1_500, ..MilpOptions::default() };
    let solution = problem.solve_with(&SimplexOptions::default(), &milp_opts)?;

    let mut shape = ShapeMapping { kernels, ..Default::default() };
    let active: Vec<usize> = (0..n_res).filter(|&r| solution[used[r]] > 0.5).collect();
    shape.num_resources = active.len();
    for (i, &inst) in basic.iter().enumerate() {
        let set: BTreeSet<usize> = active
            .iter()
            .enumerate()
            .filter(|&(_, &r)| solution[rho[i][r]] > 0.5)
            .map(|(new_r, _)| new_r)
            .collect();
        shape.allowed.insert(inst, set);
    }
    enrich(measurer, campaign, &mut shape, config);
    Ok(shape)
}

/// Constructive shape discovery (scalable variant).
///
/// Private resources come from the very-basic clique; shared resources come
/// from the maximal cliques of the "non-disjoint" graph over the basic
/// instructions, which is exactly the family of constraints the ILP enforces
/// (every benchmark whose instructions all interfere must share a resource,
/// every saturating instruction keeps a private one).
pub fn shape_via_cliques<M: Measurer>(
    measurer: &M,
    campaign: &QuadraticCampaign,
    selection: &Selection,
    config: &ShapeConfig,
) -> ShapeMapping {
    let basic = &selection.basic;
    let kernels = seed_kernels(measurer, campaign, basic);
    let mut shape = ShapeMapping { kernels, ..Default::default() };
    let mut resources: Vec<BTreeSet<InstId>> = Vec::new();

    // Private resource per very-basic instruction.
    for &i in &selection.very_basic {
        resources.push(BTreeSet::from([i]));
    }

    // Non-disjointness graph over all basic instructions.
    let interferes = |a: InstId, b: InstId| !campaign.are_disjoint(a, b, config.tolerance);
    // Enumerate maximal cliques with a simple Bron–Kerbosch (basic sets are
    // small: |I_B| is a few tens at most).
    let mut cliques: Vec<BTreeSet<InstId>> = Vec::new();
    bron_kerbosch(
        &mut cliques,
        BTreeSet::new(),
        basic.iter().copied().collect(),
        BTreeSet::new(),
        &interferes,
    );
    for clique in cliques {
        if clique.len() >= 2 && !resources.contains(&clique) {
            resources.push(clique);
        }
    }

    shape.num_resources = resources.len();
    for &i in basic {
        let set: BTreeSet<usize> = resources
            .iter()
            .enumerate()
            .filter(|(_, members)| members.contains(&i))
            .map(|(r, _)| r)
            .collect();
        shape.allowed.insert(i, set);
    }
    enrich(measurer, campaign, &mut shape, config);
    shape
}

/// Dispatches on the configured strategy.
pub fn discover_shape<M: Measurer>(
    measurer: &M,
    campaign: &QuadraticCampaign,
    selection: &Selection,
    config: &ShapeConfig,
) -> ShapeMapping {
    let use_ilp = match config.strategy {
        ShapeStrategy::Ilp => true,
        ShapeStrategy::Constructive => false,
        ShapeStrategy::Auto => selection.basic.len() <= config.ilp_size_limit,
    };
    if use_ilp {
        match shape_via_ilp(measurer, campaign, selection, config) {
            Ok(shape) if shape.num_resources > 0 => return shape,
            _ => {}
        }
    }
    shape_via_cliques(measurer, campaign, selection, config)
}

/// Enrichment loop of Algorithm 2: for every resource, benchmark all its
/// users together (weighted by their IPC) and add the result to the kernel
/// set; repeat until no new benchmark appears.
fn enrich<M: Measurer>(
    measurer: &M,
    campaign: &QuadraticCampaign,
    shape: &mut ShapeMapping,
    config: &ShapeConfig,
) {
    for _ in 0..config.max_enrichment_rounds {
        let mut added = false;
        for r in 0..shape.num_resources {
            let users = shape.users_of(r);
            if users.len() < 2 {
                continue;
            }
            let kernel = Microkernel::from_proportions(
                users.iter().map(|&i| (i, campaign.single_ipc(i).unwrap_or(1.0))),
                config.coefficient_tolerance,
                config.max_kernel_size,
            );
            if kernel.is_empty() {
                continue;
            }
            let ipc = measurer.ipc(&kernel);
            added |= shape.push_kernel_if_new(kernel, ipc);
        }
        if !added {
            break;
        }
    }
}

/// Bron–Kerbosch maximal-clique enumeration (without pivoting — fine for the
/// very small graphs LP1 sees).
fn bron_kerbosch(
    out: &mut Vec<BTreeSet<InstId>>,
    r: BTreeSet<InstId>,
    mut p: BTreeSet<InstId>,
    mut x: BTreeSet<InstId>,
    interferes: &impl Fn(InstId, InstId) -> bool,
) {
    if p.is_empty() && x.is_empty() {
        if !r.is_empty() {
            out.push(r);
        }
        return;
    }
    let candidates: Vec<InstId> = p.iter().copied().collect();
    for v in candidates {
        let mut r2 = r.clone();
        r2.insert(v);
        let p2 = p.iter().copied().filter(|&u| u != v && interferes(u, v)).collect();
        let x2 = x.iter().copied().filter(|&u| interferes(u, v)).collect();
        bron_kerbosch(out, r2, p2, x2, interferes);
        p.remove(&v);
        x.insert(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quadratic::QuadraticConfig;
    use crate::select::{select_basic_instructions, SelectionConfig};
    use palmed_machine::{presets, AnalyticMeasurer, MemoizingMeasurer};

    fn paper_setup() -> (
        MemoizingMeasurer<AnalyticMeasurer>,
        QuadraticCampaign,
        Selection,
        std::sync::Arc<palmed_isa::InstructionSet>,
    ) {
        let preset = presets::paper_ports016();
        let measurer = MemoizingMeasurer::new(AnalyticMeasurer::new(preset.mapping_arc()));
        let ids: Vec<InstId> = preset.instructions.ids().collect();
        let campaign =
            QuadraticCampaign::run(&measurer, &ids, QuadraticConfig::default(), |_, _| true);
        let sel = select_basic_instructions(
            &campaign,
            &ids,
            &SelectionConfig { target_count: 5, ..SelectionConfig::default() },
        );
        (measurer, campaign, sel, preset.instructions)
    }

    #[test]
    fn constructive_shape_covers_every_basic_instruction() {
        let (measurer, campaign, sel, _) = paper_setup();
        let shape = shape_via_cliques(&measurer, &campaign, &sel, &ShapeConfig::default());
        for &i in &sel.basic {
            assert!(
                !shape.allowed_resources(i).is_empty(),
                "basic instruction {i} has no allowed resource"
            );
        }
        assert!(shape.num_resources >= sel.very_basic.len());
    }

    #[test]
    fn constructive_shape_finds_the_paper_resources() {
        let (measurer, campaign, sel, insts) = paper_setup();
        let shape = shape_via_cliques(&measurer, &campaign, &sel, &ShapeConfig::default());
        // The paper finds 6 resources for this machine (r0, r1, r6, r01, r06,
        // r016); the constructive shape finds the private ones plus the
        // pairwise-interference cliques — at least 5, at most 8.
        assert!(
            (5..=8).contains(&shape.num_resources),
            "unexpected resource count {}",
            shape.num_resources
        );
        // ADDSS and BSR must share at least one resource (they interfere on p1/p01).
        let addss = insts.find("ADDSS").unwrap();
        let bsr = insts.find("BSR").unwrap();
        let shared: Vec<usize> = shape
            .allowed_resources(addss)
            .intersection(&shape.allowed_resources(bsr))
            .copied()
            .collect();
        assert!(!shared.is_empty(), "ADDSS and BSR must share a resource");
        // BSR and JMP are disjoint and must not share any resource.
        let jmp = insts.find("JMP").unwrap();
        let overlap: Vec<usize> = shape
            .allowed_resources(bsr)
            .intersection(&shape.allowed_resources(jmp))
            .copied()
            .collect();
        assert!(overlap.is_empty(), "BSR and JMP are disjoint but share {overlap:?}");
    }

    #[test]
    fn seed_kernels_contain_singles_pairs_and_asymmetric_benchmarks() {
        let (measurer, campaign, sel, _) = paper_setup();
        let kernels = seed_kernels(&measurer, &campaign, &sel.basic);
        let n = sel.basic.len();
        // n singles + (pair + 2 asymmetric) per unordered pair, some of which
        // may coincide and be deduplicated.
        assert!(kernels.len() > n + n * (n - 1) / 2);
        assert!(kernels.iter().all(|(k, ipc)| !k.is_empty() && *ipc > 0.0));
    }

    #[test]
    fn enrichment_adds_multi_instruction_benchmarks() {
        let (measurer, campaign, sel, _) = paper_setup();
        let shape = shape_via_cliques(&measurer, &campaign, &sel, &ShapeConfig::default());
        let max_distinct =
            shape.kernels.iter().map(|(k, _)| k.num_distinct()).max().unwrap_or(0);
        assert!(max_distinct >= 3, "enrichment should create kernels mixing >= 3 instructions");
    }

    #[test]
    #[ignore = "exact ILP shape search takes ~1 minute under the branch-and-bound node budget; the constructive strategy is the default path and is covered by the other tests"]
    fn ilp_shape_on_a_tiny_machine_matches_structure() {
        // Toy machine: ADD on {0,1}, BSR on {1}, IMUL on {0}.  Expected
        // resources: private(BSR), private(IMUL) and a shared one for ADD
        // with each of them (or a single r01-like resource).
        let preset = presets::toy_two_port();
        let measurer = MemoizingMeasurer::new(AnalyticMeasurer::new(preset.mapping_arc()));
        let add = preset.instructions.find("ADD").unwrap();
        let bsr = preset.instructions.find("BSR").unwrap();
        let imul = preset.instructions.find("IMUL").unwrap();
        let ids = vec![add, bsr, imul];
        let campaign =
            QuadraticCampaign::run(&measurer, &ids, QuadraticConfig::default(), |_, _| true);
        let sel = select_basic_instructions(
            &campaign,
            &ids,
            &SelectionConfig { target_count: 3, ..SelectionConfig::default() },
        );
        let config = ShapeConfig { strategy: ShapeStrategy::Ilp, max_resources: 5, ..ShapeConfig::default() };
        let shape = shape_via_ilp(&measurer, &campaign, &sel, &config).expect("ILP solvable");
        // Under a finite branch-and-bound budget the incumbent may not be the
        // minimum-resource shape, but it must be a *valid* shape: every basic
        // instruction keeps at least one resource, and the very-basic
        // instructions (BSR, IMUL) each keep one of their own.
        assert!(shape.num_resources >= 2, "resources: {}", shape.num_resources);
        for inst in [add, bsr, imul] {
            assert!(!shape.allowed_resources(inst).is_empty(), "{inst} lost all resources");
        }
        let bsr_private = shape
            .allowed_resources(bsr)
            .iter()
            .any(|&r| !shape.allowed_resources(imul).contains(&r));
        let imul_private = shape
            .allowed_resources(imul)
            .iter()
            .any(|&r| !shape.allowed_resources(bsr).contains(&r));
        assert!(bsr_private && imul_private, "disjoint instructions must keep private resources");
    }

    #[test]
    fn auto_strategy_falls_back_to_cliques_for_larger_sets() {
        let (measurer, campaign, sel, _) = paper_setup();
        // 5 basic instructions > ilp_size_limit of 4 -> constructive path.
        let shape = discover_shape(&measurer, &campaign, &sel, &ShapeConfig::default());
        assert!(shape.num_resources > 0);
    }
}
