//! Palmed: automatic construction of conjunctive resource mappings from
//! cycle-only measurements.
//!
//! This crate implements the contribution of *"PALMED: Throughput
//! Characterization for Superscalar Architectures"* (CGO 2022): given only a
//! way to measure the steady-state IPC of dependency-free microkernels (the
//! [`Measurer`](palmed_machine::Measurer) trait), it infers a **conjunctive
//! bipartite resource mapping** — for every instruction, how much of every
//! abstract resource it consumes — such that the throughput of *any*
//! instruction mix can then be predicted with a closed-form maximum instead
//! of a flow problem.
//!
//! The crate is organised along the paper's structure:
//!
//! * [`conjunctive`] — the model itself: Def. IV.1–IV.3 (microkernels,
//!   conjunctive port mapping, throughput formula).
//! * [`dual`] — Appendix A: the ∇-dual construction turning a disjunctive
//!   (ground-truth) port mapping into an equivalent conjunctive one, used as
//!   an oracle and for property-testing the equivalence theorems.
//! * [`quadratic`] — the quadratic benchmark campaign (`a`, `aabb`, `aMb`).
//! * [`select`] — Algorithm 1: basic-instruction selection (low-IPC filter,
//!   equivalence classes, very-basic clique, greediest completion).
//! * [`lp1`] — Algorithm 3: the ILP that discovers the *shape* of the core
//!   mapping (how many abstract resources, which edges may exist).
//! * [`lp2`] — Algorithm 4: the Bipartite Weight Problem assigning edge
//!   weights to the core mapping.
//! * [`saturate`] — selection of one saturating microkernel per resource.
//! * [`lpaux`] — Algorithm 5: the per-instruction completion of the mapping.
//! * [`pipeline`] — the end-to-end driver of Fig. 3 ([`Palmed`]).
//! * [`predict`] — the [`ThroughputPredictor`] trait and Palmed's
//!   implementation of it, shared with the baseline tools.
//! * [`report`] — mapping statistics (the data behind Table II).
//!
//! # Quickstart
//!
//! ```
//! use palmed_core::{Palmed, PalmedConfig, ThroughputPredictor};
//! use palmed_machine::{presets, AnalyticMeasurer, MemoizingMeasurer};
//! use palmed_isa::Microkernel;
//!
//! // The machine under test: the 3-port pedagogical core from the paper.
//! let machine = presets::paper_ports016();
//! let measurer = MemoizingMeasurer::new(AnalyticMeasurer::new(machine.mapping_arc()));
//!
//! // Infer the resource mapping from IPC measurements only.
//! let result = Palmed::new(PalmedConfig::small()).infer(&measurer);
//! let predictor = result.predictor();
//!
//! // Predict the throughput of an unseen instruction mix.
//! let addss = machine.instructions.find("ADDSS").unwrap();
//! let bsr = machine.instructions.find("BSR").unwrap();
//! let kernel = Microkernel::pair(addss, 2, bsr, 1);
//! let predicted = predictor.predict_ipc(&kernel).unwrap();
//! assert!((predicted - 2.0).abs() < 0.2);
//! ```

pub mod conjunctive;
pub mod dual;
pub mod lp1;
pub mod lp2;
pub mod lpaux;
pub mod pipeline;
pub mod predict;
pub mod quadratic;
pub mod report;
pub mod saturate;
pub mod select;

pub use conjunctive::{ConjunctiveMapping, ResourceId};
pub use pipeline::{Palmed, PalmedConfig, PalmedResult};
pub use predict::{PalmedPredictor, ThroughputPredictor};
pub use report::MappingReport;
