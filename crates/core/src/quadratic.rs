//! The quadratic benchmark campaign.
//!
//! The selection of basic instructions (Sec. V-A) and the seed of the core
//! mapping (Sec. V-B) are built from three benchmark shapes:
//!
//! * `a` — each instruction alone, giving its individual IPC;
//! * `a^σa b^σb` ("aabb") — every pair of instructions, each repeated
//!   proportionally to its own IPC (so that neither trivially starves);
//! * `a^M b` ("aMb", M = 4) — an asymmetric pair used by LP1 to avoid
//!   degenerate solutions.
//!
//! The number of pair benchmarks is quadratic in the number of instructions,
//! hence the name.  The campaign respects the calibration rules of
//! Sec. VI-A: instructions whose IPC is below a threshold are excluded, and
//! pairs mixing incompatible vector extensions (SSE + AVX) are skipped.

use palmed_isa::{InstId, Microkernel};
use palmed_machine::Measurer;
use palmed_par::par_map;
use std::collections::HashMap;

/// Configuration of the quadratic campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuadraticConfig {
    /// Instructions with an individual IPC below this value are not
    /// benchmarked further (paper: 0.05).
    pub min_ipc: f64,
    /// Relative rounding tolerance when turning IPC proportions into integer
    /// repetition counts (paper: 0.05).
    pub coefficient_tolerance: f64,
    /// Maximum total instructions per generated benchmark body.
    pub max_kernel_size: u32,
    /// The `M` of the `a^M b` benchmarks (paper: 4).
    pub asymmetric_repeat: u32,
}

impl Default for QuadraticConfig {
    fn default() -> Self {
        QuadraticConfig {
            min_ipc: 0.05,
            coefficient_tolerance: 0.05,
            max_kernel_size: 64,
            asymmetric_repeat: 4,
        }
    }
}

/// Results of a quadratic campaign over a set of instructions.
#[derive(Debug, Clone, Default)]
pub struct QuadraticCampaign {
    /// Individual IPC of every benchmarked instruction.
    singles: HashMap<InstId, f64>,
    /// IPC of the `aabb` benchmark for every benchmarked (unordered) pair.
    pairs: HashMap<(InstId, InstId), f64>,
    /// The kernels actually generated (for reuse by LP1 and statistics).
    kernels: Vec<(Microkernel, f64)>,
    config: QuadraticConfig,
}

impl QuadraticCampaign {
    /// Runs the campaign for `instructions` on `measurer`.
    ///
    /// `compatible` decides whether two instructions may share a benchmark
    /// (the extension-mixing rule); it is always called with `a <= b`.
    ///
    /// The per-benchmark measurements are embarrassingly parallel and fan
    /// out over the available cores; results are recorded in the same
    /// deterministic order as the sequential loop would produce.
    pub fn run<M: Measurer + Sync>(
        measurer: &M,
        instructions: &[InstId],
        config: QuadraticConfig,
        compatible: impl Fn(InstId, InstId) -> bool + Sync,
    ) -> Self {
        let mut campaign = QuadraticCampaign { config, ..Default::default() };

        // Individual IPCs and the low-IPC filter.
        let single_kernels: Vec<Microkernel> =
            instructions.iter().map(|&a| Microkernel::single(a)).collect();
        let single_ipcs = par_map(&single_kernels, |kernel| measurer.ipc(kernel));
        let mut usable = Vec::new();
        for ((&a, kernel), ipc) in instructions.iter().zip(single_kernels).zip(single_ipcs) {
            campaign.singles.insert(a, ipc);
            campaign.kernels.push((kernel, ipc));
            if ipc >= config.min_ipc {
                usable.push(a);
            }
        }

        // Pair benchmarks: enumerate in deterministic order, measure in
        // parallel, then record sequentially.
        let mut pair_jobs: Vec<(InstId, InstId, Microkernel)> = Vec::new();
        for (i, &a) in usable.iter().enumerate() {
            for &b in &usable[i + 1..] {
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                if !compatible(lo, hi) {
                    continue;
                }
                pair_jobs.push((lo, hi, campaign.pair_kernel(a, b)));
            }
        }
        let pair_ipcs = par_map(&pair_jobs, |(_, _, kernel)| measurer.ipc(kernel));
        for ((lo, hi, kernel), ipc) in pair_jobs.into_iter().zip(pair_ipcs) {
            campaign.pairs.insert((lo, hi), ipc);
            campaign.kernels.push((kernel, ipc));
        }
        campaign
    }

    /// The `aabb` kernel for a pair, using the measured individual IPCs as
    /// proportions (rounded to integers within the configured tolerance).
    pub fn pair_kernel(&self, a: InstId, b: InstId) -> Microkernel {
        let ipc_a = self.singles.get(&a).copied().unwrap_or(1.0).max(self.config.min_ipc);
        let ipc_b = self.singles.get(&b).copied().unwrap_or(1.0).max(self.config.min_ipc);
        Microkernel::from_proportions(
            [(a, ipc_a), (b, ipc_b)],
            self.config.coefficient_tolerance,
            self.config.max_kernel_size,
        )
    }

    /// The asymmetric `a^M b` kernel.
    pub fn asymmetric_kernel(&self, a: InstId, b: InstId) -> Microkernel {
        Microkernel::pair(a, self.config.asymmetric_repeat, b, 1)
    }

    /// Individual IPC of an instruction, if it was benchmarked.
    pub fn single_ipc(&self, inst: InstId) -> Option<f64> {
        self.singles.get(&inst).copied()
    }

    /// IPC of the pair benchmark `aabb`, if it was run.
    pub fn pair_ipc(&self, a: InstId, b: InstId) -> Option<f64> {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.pairs.get(&key).copied()
    }

    /// Instructions whose individual IPC passed the low-IPC filter.
    pub fn usable_instructions(&self) -> Vec<InstId> {
        let mut v: Vec<InstId> = self
            .singles
            .iter()
            .filter(|&(_, &ipc)| ipc >= self.config.min_ipc)
            .map(|(&i, _)| i)
            .collect();
        v.sort();
        v
    }

    /// Instructions rejected by the low-IPC filter.
    pub fn low_ipc_instructions(&self) -> Vec<InstId> {
        let mut v: Vec<InstId> = self
            .singles
            .iter()
            .filter(|&(_, &ipc)| ipc < self.config.min_ipc)
            .map(|(&i, _)| i)
            .collect();
        v.sort();
        v
    }

    /// The campaign's IPC feature vector of an instruction: its pair IPC
    /// against every instruction in `others` (its own single IPC is used when
    /// the pair was skipped or is the instruction itself).
    ///
    /// Two instructions with (approximately) identical vectors behave
    /// identically with respect to the basic-instruction selection and are
    /// grouped into one equivalence class.
    pub fn feature_vector(&self, inst: InstId, others: &[InstId]) -> Vec<f64> {
        others
            .iter()
            .map(|&o| {
                if o == inst {
                    self.single_ipc(inst).unwrap_or(0.0)
                } else {
                    self.pair_ipc(inst, o)
                        .unwrap_or_else(|| self.single_ipc(inst).unwrap_or(0.0))
                }
            })
            .collect()
    }

    /// Whether two instructions are *disjoint*: the pair IPC equals the sum
    /// of the individual IPCs (within `tolerance`, relative).
    pub fn are_disjoint(&self, a: InstId, b: InstId, tolerance: f64) -> bool {
        let (Some(ia), Some(ib), Some(iab)) =
            (self.single_ipc(a), self.single_ipc(b), self.pair_ipc(a, b))
        else {
            return false;
        };
        let expected = ia + ib;
        (iab - expected).abs() <= tolerance * expected
    }

    /// All generated kernels with their measured IPC.
    pub fn kernels(&self) -> &[(Microkernel, f64)] {
        &self.kernels
    }

    /// Number of benchmarks generated by the campaign.
    pub fn num_benchmarks(&self) -> usize {
        self.kernels.len()
    }

    /// The configuration the campaign ran with.
    pub fn config(&self) -> &QuadraticConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use palmed_machine::{presets, AnalyticMeasurer};

    fn campaign() -> (QuadraticCampaign, std::sync::Arc<palmed_isa::InstructionSet>) {
        let preset = presets::paper_ports016();
        let measurer = AnalyticMeasurer::new(preset.mapping_arc());
        let ids: Vec<InstId> = preset.instructions.ids().collect();
        let c = QuadraticCampaign::run(&measurer, &ids, QuadraticConfig::default(), |_, _| true);
        (c, preset.instructions)
    }

    #[test]
    fn singles_match_known_throughputs() {
        let (c, insts) = campaign();
        let find = |n: &str| insts.find(n).unwrap();
        assert!((c.single_ipc(find("ADDSS")).unwrap() - 2.0).abs() < 1e-9);
        assert!((c.single_ipc(find("BSR")).unwrap() - 1.0).abs() < 1e-9);
        assert!((c.single_ipc(find("JNLE")).unwrap() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn pair_benchmark_count_is_quadratic() {
        let (c, insts) = campaign();
        let n = insts.len();
        assert_eq!(c.num_benchmarks(), n + n * (n - 1) / 2);
    }

    #[test]
    fn disjointness_matches_port_structure() {
        let (c, insts) = campaign();
        let find = |n: &str| insts.find(n).unwrap();
        // BSR (p1) and JMP (p6) are disjoint; ADDSS (p01) and BSR (p1) are not.
        assert!(c.are_disjoint(find("BSR"), find("JMP"), 0.05));
        assert!(!c.are_disjoint(find("ADDSS"), find("BSR"), 0.05));
        // DIVPS (p0) and BSR (p1) disjoint.
        assert!(c.are_disjoint(find("DIVPS"), find("BSR"), 0.05));
    }

    #[test]
    fn pair_kernel_respects_proportions() {
        let (c, insts) = campaign();
        let find = |n: &str| insts.find(n).unwrap();
        let k = c.pair_kernel(find("ADDSS"), find("BSR"));
        // IPC 2 vs 1 -> twice as many ADDSS as BSR.
        assert_eq!(k.multiplicity(find("ADDSS")), 2 * k.multiplicity(find("BSR")));
    }

    #[test]
    fn incompatible_pairs_are_skipped() {
        let preset = presets::paper_ports016();
        let measurer = AnalyticMeasurer::new(preset.mapping_arc());
        let ids: Vec<InstId> = preset.instructions.ids().collect();
        // Declare everything incompatible: only singles are measured.
        let c = QuadraticCampaign::run(&measurer, &ids, QuadraticConfig::default(), |_, _| false);
        assert_eq!(c.num_benchmarks(), ids.len());
        assert!(c.pair_ipc(ids[0], ids[1]).is_none());
    }

    #[test]
    fn feature_vectors_separate_behaviours() {
        let (c, insts) = campaign();
        let find = |n: &str| insts.find(n).unwrap();
        let all: Vec<InstId> = insts.ids().collect();
        let jnle = c.feature_vector(find("JNLE"), &all);
        let jmp = c.feature_vector(find("JMP"), &all);
        let addss = c.feature_vector(find("ADDSS"), &all);
        // JNLE (ports 0,6) and JMP (port 6) must differ; ADDSS differs from both.
        assert_ne!(jnle, jmp);
        assert_ne!(addss, jmp);
        assert_eq!(jnle.len(), all.len());
    }

    #[test]
    fn low_ipc_filter_excludes_slow_instructions() {
        // Build a machine where the divider is truly slow via the SKL preset.
        let preset = presets::skl_sp(&palmed_isa::InventoryConfig::small());
        let measurer = AnalyticMeasurer::new(preset.mapping_arc());
        let idiv = preset.instructions.find("IDIV").unwrap();
        let add = preset.instructions.find("ADD").unwrap();
        let config = QuadraticConfig { min_ipc: 0.5, ..QuadraticConfig::default() };
        let c = QuadraticCampaign::run(&measurer, &[idiv, add], config, |_, _| true);
        assert_eq!(c.low_ipc_instructions(), vec![idiv]);
        assert_eq!(c.usable_instructions(), vec![add]);
        // No pair benchmark was generated (only one usable instruction).
        assert_eq!(c.num_benchmarks(), 2);
    }
}
