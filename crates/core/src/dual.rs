//! The ∇-dual: turning a disjunctive port mapping into an equivalent
//! conjunctive resource mapping (Appendix A of the paper).
//!
//! Given a disjunctive mapping (µOPs choose one port among a set), pick a
//! family ∇ of port subsets.  Each subset `J ∈ ∇` becomes an abstract
//! resource of throughput `|J|`; a µOP uses `r_J` exactly when *all* its
//! compatible ports lie inside `J`.  After normalisation (divide usages by
//! `|J|`), the conjunctive throughput formula under-approximates the
//! execution time for any ∇ (Thm. A.1 (i)) and is exact when ∇ contains all
//! port subsets (Thm. A.1 (ii)) — in practice the much smaller *union
//! closure* of the µOP port sets suffices, which is what [`nabla_closure`]
//! computes and what the paper uses ("fewer than 14 elements in our
//! experiments").
//!
//! This module is the reproduction's oracle: it converts the ground-truth
//! machine model into the representation Palmed is trying to learn, so tests
//! can compare the inferred mapping against the ideal one, and the
//! "uops.info"-style baseline can be expressed as "the oracle dual without
//! non-port resources".

use crate::conjunctive::ConjunctiveMapping;
use palmed_machine::{DisjunctiveMapping, PortSet};
use std::collections::BTreeSet;

/// Options controlling the dual construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DualOptions {
    /// Add one extra abstract resource modelling the front-end: every
    /// instruction uses `1 / decode-width` of it.  The paper highlights that
    /// representing such non-port bottlenecks is exactly what the conjunctive
    /// form can do and port-based tools cannot.
    pub include_front_end: bool,
    /// Use the full power set of ports instead of the union closure
    /// (exponential; only sensible for machines with few ports, e.g. tests).
    pub full_power_set: bool,
}

impl Default for DualOptions {
    fn default() -> Self {
        DualOptions { include_front_end: true, full_power_set: false }
    }
}

/// Computes ∇ as the union closure of the given port sets: starting from the
/// distinct µOP port sets, the union of any two intersecting members is added
/// until a fixed point is reached.
pub fn nabla_closure(base: impl IntoIterator<Item = PortSet>) -> Vec<PortSet> {
    let mut nabla: BTreeSet<PortSet> =
        base.into_iter().filter(|s| !s.is_empty()).collect();
    loop {
        let mut additions = Vec::new();
        let members: Vec<PortSet> = nabla.iter().copied().collect();
        for (idx, &a) in members.iter().enumerate() {
            for &b in &members[idx + 1..] {
                if !a.intersection(b).is_empty() {
                    let u = a.union(b);
                    if !nabla.contains(&u) {
                        additions.push(u);
                    }
                }
            }
        }
        if additions.is_empty() {
            break;
        }
        nabla.extend(additions);
    }
    nabla.into_iter().collect()
}

/// All non-empty subsets of the first `num_ports` ports.
pub fn full_power_set(num_ports: usize) -> Vec<PortSet> {
    assert!(num_ports <= 20, "power set limited to 20 ports, got {num_ports}");
    (1u32..(1 << num_ports)).map(PortSet::from_mask).collect()
}

/// Human-readable name of the abstract resource corresponding to a port set
/// (`r01` for ports {0, 1}, matching the paper's figures).
pub fn resource_name_for(ports: PortSet) -> String {
    let mut name = String::from("r");
    for p in ports.iter() {
        name.push_str(&p.index().to_string());
    }
    name
}

/// Builds the normalised ∇-dual conjunctive mapping of a disjunctive mapping.
///
/// Every instruction of the disjunctive mapping's instruction set is mapped.
pub fn dual_of(mapping: &DisjunctiveMapping, options: &DualOptions) -> ConjunctiveMapping {
    let machine = mapping.machine();
    let insts = mapping.instructions();

    let nabla = if options.full_power_set {
        full_power_set(machine.num_ports)
    } else {
        let base = insts
            .ids()
            .flat_map(|i| mapping.uops(i).iter().map(|u| u.ports).collect::<Vec<_>>());
        nabla_closure(base)
    };

    let mut names: Vec<String> = nabla.iter().map(|&j| resource_name_for(j)).collect();
    let front_end_index = if options.include_front_end {
        names.push("front-end".to_string());
        Some(names.len() - 1)
    } else {
        None
    };

    let mut conj = ConjunctiveMapping::new(names);
    for inst in insts.ids() {
        let mut usage = vec![0.0; nabla.len() + usize::from(front_end_index.is_some())];
        for (idx, &j) in nabla.iter().enumerate() {
            let mut load = 0.0;
            for u in mapping.uops(inst) {
                if u.ports.is_subset_of(j) {
                    load += u.inverse_throughput;
                }
            }
            usage[idx] = load / j.len() as f64;
        }
        if let Some(fe) = front_end_index {
            usage[fe] = 1.0 / machine.front_end.instructions_per_cycle;
        }
        conj.set_usage(inst, usage);
    }
    conj.prune_unused_resources();
    conj
}

#[cfg(test)]
mod tests {
    use super::*;
    use palmed_isa::Microkernel;
    use palmed_machine::{presets, throughput};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn closure_of_paper_ports() {
        // µOP port sets of the pedagogical machine: {0}, {01}, {1}, {02}, {2}.
        let sets = [
            PortSet::from_ports([0]),
            PortSet::from_ports([0, 1]),
            PortSet::from_ports([1]),
            PortSet::from_ports([0, 2]),
            PortSet::from_ports([2]),
        ];
        let nabla = nabla_closure(sets);
        // Expect the 5 base sets plus {0,1,2} and {1,2}? {1} ∪ {02} don't
        // intersect; {01} ∪ {02} = {012}; {01} ∪ {2}? disjoint. {012} present.
        assert!(nabla.contains(&PortSet::from_ports([0, 1, 2])));
        assert!(nabla.len() >= 6);
        // Closure is idempotent.
        let again = nabla_closure(nabla.clone());
        assert_eq!(again.len(), nabla.len());
    }

    #[test]
    fn resource_names_match_paper_convention() {
        assert_eq!(resource_name_for(PortSet::from_ports([0, 1])), "r01");
        assert_eq!(resource_name_for(PortSet::from_ports([0, 1, 6])), "r016");
    }

    #[test]
    fn paper_example_dual_has_expected_resources() {
        let preset = presets::paper_ports016();
        let map = preset.mapping();
        let dual = dual_of(&map, &DualOptions { include_front_end: false, full_power_set: false });
        let names: Vec<&str> =
            dual.resources().map(|r| dual.resource_name(r)).collect();
        // Paper Fig. 1b: r0, r1, r6(-> port 2 here), r01, r06(->r02), r016(->r012)
        for expected in ["r0", "r1", "r2", "r01", "r02", "r012"] {
            assert!(names.contains(&expected), "missing {expected}, got {names:?}");
        }
    }

    #[test]
    fn paper_example_dual_normalised_usages() {
        let preset = presets::paper_ports016();
        let insts = &preset.instructions;
        let map = preset.mapping();
        let dual = dual_of(&map, &DualOptions { include_front_end: false, full_power_set: false });
        let addss = insts.find("ADDSS").unwrap();
        let vcvtt = insts.find("VCVTT").unwrap();
        let r01 = dual.resources().find(|&r| dual.resource_name(r) == "r01").unwrap();
        let r012 = dual.resources().find(|&r| dual.resource_name(r) == "r012").unwrap();
        // Paper: normalised ρ(ADDSS, r01) = 1/2, ρ(ADDSS, r016) = 1/3,
        // ρ(VCVTT, r01) = 1 (2 uses / throughput 2).
        assert!((dual.usage(addss, r01) - 0.5).abs() < 1e-12);
        assert!((dual.usage(addss, r012) - 1.0 / 3.0).abs() < 1e-12);
        assert!((dual.usage(vcvtt, r01) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dual_exactly_reproduces_disjunctive_throughput_on_paper_machine() {
        let preset = presets::paper_ports016();
        let insts = &preset.instructions;
        let map = preset.mapping();
        let dual = dual_of(&map, &DualOptions::default());
        let find = |n: &str| insts.find(n).unwrap();
        let kernels = [
            Microkernel::pair(find("ADDSS"), 2, find("BSR"), 1),
            Microkernel::pair(find("ADDSS"), 1, find("BSR"), 2),
            Microkernel::from_counts([(find("VCVTT"), 1), (find("JNLE"), 2), (find("JMP"), 1)]),
            Microkernel::from_counts([(find("DIVPS"), 2), (find("ADDSS"), 1), (find("BSR"), 1)]),
            Microkernel::single(find("JNLE")).scaled(3),
        ];
        for k in kernels {
            let native = throughput::ipc(&map, &k);
            let predicted = dual.ipc(&k).unwrap();
            assert!(
                (native - predicted).abs() < 1e-9,
                "dual mismatch on {k}: native {native}, dual {predicted}"
            );
        }
    }

    #[test]
    fn closure_dual_never_overestimates_execution_time() {
        // Theorem A.1 (i): t_dual(K) <= t_disj(K) for any ∇; with the union
        // closure we additionally expect equality on most kernels, but only
        // the inequality is guaranteed.  Check on random kernels of the
        // SKL-like machine (8 ports -> power set would be 255 resources).
        let preset = presets::skl_sp(&palmed_isa::InventoryConfig::small());
        let map = preset.mapping();
        let dual = dual_of(&map, &DualOptions::default());
        let ids: Vec<_> = preset.instructions.ids().collect();
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..50 {
            let mut k = Microkernel::new();
            for _ in 0..rng.gen_range(1..5) {
                k.add(ids[rng.gen_range(0..ids.len())], rng.gen_range(1..4));
            }
            let t_disj = throughput::optimal_execution_time(&map, &k);
            let t_dual = dual.execution_time(&k);
            assert!(
                t_dual <= t_disj + 1e-9,
                "dual overestimates: {t_dual} > {t_disj} for {k}"
            );
        }
    }

    #[test]
    fn power_set_dual_is_exact_on_small_machines(){
        // Theorem A.1 (ii): with ∇ = all subsets the dual is exact.  The toy
        // machine has 2 ports, the pedagogical one 3 — both small enough.
        for preset in [presets::toy_two_port(), presets::paper_ports016()] {
            let map = preset.mapping();
            let dual =
                dual_of(&map, &DualOptions { include_front_end: true, full_power_set: true });
            let ids: Vec<_> = preset.instructions.ids().collect();
            let mut rng = StdRng::seed_from_u64(7);
            for _ in 0..100 {
                let mut k = Microkernel::new();
                for _ in 0..rng.gen_range(1..4) {
                    k.add(ids[rng.gen_range(0..ids.len())], rng.gen_range(1..4));
                }
                let t_disj = throughput::optimal_execution_time(&map, &k);
                let t_dual = dual.execution_time(&k);
                assert!(
                    (t_disj - t_dual).abs() < 1e-9,
                    "power-set dual not exact on {k}: {t_dual} vs {t_disj}"
                );
            }
        }
    }

    #[test]
    fn front_end_resource_is_included_when_requested() {
        let preset = presets::paper_ports016();
        let map = preset.mapping();
        let with_fe = dual_of(&map, &DualOptions { include_front_end: true, full_power_set: false });
        let without_fe =
            dual_of(&map, &DualOptions { include_front_end: false, full_power_set: false });
        assert_eq!(with_fe.num_resources(), without_fe.num_resources() + 1);
        let addss = preset.instructions.find("ADDSS").unwrap();
        // Six ADDSS per iteration: port bound gives IPC 2, front-end gives 4.
        let k = Microkernel::single(addss).scaled(6);
        assert!((with_fe.ipc(&k).unwrap() - 2.0).abs() < 1e-9);
        // A kernel with enough port parallelism is front-end-bound only in
        // the with-front-end dual.
        let jmp = preset.instructions.find("JMP").unwrap();
        let bsr = preset.instructions.find("BSR").unwrap();
        let divps = preset.instructions.find("DIVPS").unwrap();
        let wide = Microkernel::from_counts([(jmp, 2), (bsr, 2), (divps, 2)]);
        let fe_ipc = with_fe.ipc(&wide).unwrap();
        let port_ipc = without_fe.ipc(&wide).unwrap();
        assert!(fe_ipc <= 4.0 + 1e-9);
        assert!(port_ipc >= fe_ipc - 1e-9);
    }
}
