//! The conjunctive bipartite resource mapping (Def. IV.2 / IV.3).
//!
//! In a conjunctive mapping, every instruction *always* uses every resource
//! it is connected to, in a fixed proportion `ρ_{i,r}` (a number of cycles of
//! that resource per executed instance).  Resources are normalised to a
//! throughput of one use per cycle.  The execution time of one iteration of
//! a microkernel `K` is then simply
//!
//! ```text
//! t(K) = max over resources r of  Σ_i σ_{K,i} · ρ_{i,r}
//! ```
//!
//! and its IPC is `|K| / t(K)` — no flow problem, no assignment choice.
//! This closed form is what makes the conjunctive representation practical
//! both for inference (LP constraints become linear) and for downstream
//! consumers (compilers, performance debuggers).

use palmed_isa::{InstId, InstructionSet, Microkernel};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;

thread_local! {
    /// Reusable load buffer for the borrow-free entry points
    /// ([`ConjunctiveMapping::execution_time`] & friends), so the legacy
    /// per-call API does not allocate on every prediction.
    static LOAD_SCRATCH: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
}

/// Identifier of an abstract resource within a [`ConjunctiveMapping`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ResourceId(pub u32);

impl ResourceId {
    /// Raw index of the resource.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ResourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// A normalised conjunctive bipartite resource mapping.
///
/// Every resource has throughput 1; `ρ_{i,r}` is the number of cycles of
/// resource `r` consumed by one instance of instruction `i` (0 when the
/// instruction does not use the resource).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ConjunctiveMapping {
    resource_names: Vec<String>,
    /// Per mapped instruction, a dense vector of length `num_resources()`.
    usage: BTreeMap<InstId, Vec<f64>>,
}

impl ConjunctiveMapping {
    /// Creates an empty mapping with named resources.
    pub fn new(resource_names: Vec<String>) -> Self {
        ConjunctiveMapping { resource_names, usage: BTreeMap::new() }
    }

    /// Builds a mapping from per-instruction dense usage rows in one pass —
    /// equivalent to calling [`set_usage`](Self::set_usage) per row, but the
    /// row table is collected in bulk (the binary artifact codec's load
    /// path).
    ///
    /// Rows must already hold validated values (finite, non-negative; the
    /// codecs check entries before dense reconstruction) — the value sweep
    /// only runs in debug builds, unlike [`set_usage`](Self::set_usage).
    ///
    /// # Panics
    ///
    /// Panics if any row length differs from the number of resources.
    pub fn from_rows(
        resource_names: Vec<String>,
        rows: impl IntoIterator<Item = (InstId, Vec<f64>)>,
    ) -> Self {
        let num_resources = resource_names.len();
        let usage: BTreeMap<InstId, Vec<f64>> = rows
            .into_iter()
            .inspect(|(inst, row)| {
                assert_eq!(
                    row.len(),
                    num_resources,
                    "usage vector length {} != resource count {num_resources} for {inst}",
                    row.len()
                );
                debug_assert!(
                    row.iter().all(|&u| u.is_finite() && u >= 0.0),
                    "usage values must be finite and non-negative: {row:?}"
                );
            })
            .collect();
        ConjunctiveMapping { resource_names, usage }
    }

    /// Creates an empty mapping with `n` anonymous resources `R0..R(n-1)`.
    pub fn with_resources(n: usize) -> Self {
        Self::new((0..n).map(|i| format!("R{i}")).collect())
    }

    /// Number of abstract resources.
    pub fn num_resources(&self) -> usize {
        self.resource_names.len()
    }

    /// Number of mapped instructions.
    pub fn num_instructions(&self) -> usize {
        self.usage.len()
    }

    /// All resource ids.
    pub fn resources(&self) -> impl Iterator<Item = ResourceId> + '_ {
        (0..self.resource_names.len() as u32).map(ResourceId)
    }

    /// Name of a resource.
    pub fn resource_name(&self, r: ResourceId) -> &str {
        &self.resource_names[r.index()]
    }

    /// Renames a resource (used to attach human-readable combined-port names).
    pub fn set_resource_name(&mut self, r: ResourceId, name: impl Into<String>) {
        self.resource_names[r.index()] = name.into();
    }

    /// Registers (or replaces) the usage vector of an instruction.
    ///
    /// # Panics
    ///
    /// Panics if the vector length differs from the number of resources, or
    /// if any usage is negative or non-finite.
    pub fn set_usage(&mut self, inst: InstId, usage: Vec<f64>) {
        assert_eq!(
            usage.len(),
            self.num_resources(),
            "usage vector length {} != resource count {}",
            usage.len(),
            self.num_resources()
        );
        assert!(
            usage.iter().all(|&u| u.is_finite() && u >= 0.0),
            "usage values must be finite and non-negative: {usage:?}"
        );
        self.usage.insert(inst, usage);
    }

    /// Removes an instruction from the mapping.
    pub fn remove(&mut self, inst: InstId) {
        self.usage.remove(&inst);
    }

    /// Whether the instruction has a mapping.
    pub fn supports(&self, inst: InstId) -> bool {
        self.usage.contains_key(&inst)
    }

    /// Usage `ρ_{i,r}`; 0 when the instruction is unmapped.
    pub fn usage(&self, inst: InstId, r: ResourceId) -> f64 {
        self.usage.get(&inst).map_or(0.0, |v| v[r.index()])
    }

    /// Full usage vector of an instruction, if mapped.
    pub fn usage_vector(&self, inst: InstId) -> Option<&[f64]> {
        self.usage.get(&inst).map(Vec::as_slice)
    }

    /// Iterates over mapped instructions.
    pub fn instructions(&self) -> impl Iterator<Item = InstId> + '_ {
        self.usage.keys().copied()
    }

    /// Total resource consumption of one instance of `inst` (the `cons`
    /// quantity used when ranking saturating kernels).
    pub fn consumption(&self, inst: InstId) -> f64 {
        self.usage.get(&inst).map_or(0.0, |v| v.iter().sum())
    }

    /// Load placed on every resource by one iteration of `kernel`
    /// (`Σ_i σ_{K,i} ρ_{i,r}` for each `r`).
    ///
    /// Instructions absent from the mapping contribute nothing (this mirrors
    /// the paper's evaluation rule for unsupported instructions).
    pub fn kernel_load(&self, kernel: &Microkernel) -> Vec<f64> {
        let mut load = Vec::new();
        self.kernel_load_into(kernel, &mut load);
        load
    }

    /// Allocation-free variant of [`kernel_load`](Self::kernel_load): writes
    /// the per-resource load into `load`, clearing and resizing it as needed.
    /// Reusing the same buffer across calls amortises the allocation away.
    pub fn kernel_load_into(&self, kernel: &Microkernel, load: &mut Vec<f64>) {
        load.clear();
        load.resize(self.num_resources(), 0.0);
        for &(inst, count) in kernel.as_slice() {
            if let Some(usage) = self.usage.get(&inst) {
                for (l, u) in load.iter_mut().zip(usage) {
                    *l += count as f64 * u;
                }
            }
        }
    }

    /// Execution time `t(K)` of one loop iteration (Def. IV.2).
    ///
    /// Returns 0 when no mapped instruction appears in the kernel.
    pub fn execution_time(&self, kernel: &Microkernel) -> f64 {
        LOAD_SCRATCH.with_borrow_mut(|scratch| self.execution_time_with(kernel, scratch))
    }

    /// [`execution_time`](Self::execution_time) with a caller-provided
    /// scratch buffer (its content on entry is irrelevant).
    pub fn execution_time_with(&self, kernel: &Microkernel, scratch: &mut Vec<f64>) -> f64 {
        self.kernel_load_into(kernel, scratch);
        scratch.iter().copied().fold(0.0, f64::max)
    }

    /// Throughput (IPC) of a microkernel (Def. IV.3).
    ///
    /// Counts *all* instructions of the kernel in the numerator, including
    /// unmapped ones; returns `None` when the execution time is zero (no
    /// mapped instruction contributes any load).
    pub fn ipc(&self, kernel: &Microkernel) -> Option<f64> {
        LOAD_SCRATCH.with_borrow_mut(|scratch| self.ipc_with(kernel, scratch))
    }

    /// [`ipc`](Self::ipc) with a caller-provided scratch buffer.
    pub fn ipc_with(&self, kernel: &Microkernel, scratch: &mut Vec<f64>) -> Option<f64> {
        let t = self.execution_time_with(kernel, scratch);
        if t <= 0.0 {
            None
        } else {
            Some(kernel.total_instructions() as f64 / t)
        }
    }

    /// The resource that bottlenecks `kernel`, together with its load.
    pub fn bottleneck(&self, kernel: &Microkernel) -> Option<(ResourceId, f64)> {
        LOAD_SCRATCH.with_borrow_mut(|scratch| self.bottleneck_with(kernel, scratch))
    }

    /// [`bottleneck`](Self::bottleneck) with a caller-provided scratch buffer.
    pub fn bottleneck_with(
        &self,
        kernel: &Microkernel,
        scratch: &mut Vec<f64>,
    ) -> Option<(ResourceId, f64)> {
        self.kernel_load_into(kernel, scratch);
        let (idx, &max) = scratch
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite loads"))?;
        if max > 0.0 {
            Some((ResourceId(idx as u32), max))
        } else {
            None
        }
    }

    /// Fraction of mapped instructions among `insts`.
    pub fn coverage(&self, insts: &InstructionSet) -> f64 {
        if insts.is_empty() {
            return 0.0;
        }
        insts.ids().filter(|&i| self.supports(i)).count() as f64 / insts.len() as f64
    }

    /// Removes resources that no mapped instruction uses, returning the
    /// number of resources dropped.  Resource ids are re-numbered.
    pub fn prune_unused_resources(&mut self) -> usize {
        let n = self.num_resources();
        let mut used = vec![false; n];
        for usage in self.usage.values() {
            for (r, &u) in usage.iter().enumerate() {
                if u > 1e-9 {
                    used[r] = true;
                }
            }
        }
        let keep: Vec<usize> = (0..n).filter(|&r| used[r]).collect();
        if keep.len() == n {
            return 0;
        }
        self.resource_names = keep.iter().map(|&r| self.resource_names[r].clone()).collect();
        for usage in self.usage.values_mut() {
            *usage = keep.iter().map(|&r| usage[r]).collect();
        }
        n - keep.len()
    }

    /// Pretty-prints the mapping with instruction names from `insts`.
    pub fn render(&self, insts: &InstructionSet) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "conjunctive mapping: {} instructions, {} resources\n",
            self.num_instructions(),
            self.num_resources()
        ));
        out.push_str("instruction                  ");
        for name in &self.resource_names {
            out.push_str(&format!("{name:>10}"));
        }
        out.push('\n');
        for (&inst, usage) in &self.usage {
            out.push_str(&format!("{:<29}", insts.name(inst)));
            for &u in usage {
                if u.abs() < 1e-9 {
                    out.push_str(&format!("{:>10}", "."));
                } else {
                    out.push_str(&format!("{u:>10.3}"));
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> (ConjunctiveMapping, InstId, InstId) {
        // Normalised Fig. 1c: resources r1, r01, r016 (throughput already
        // folded in).  ADDSS: 0 on r1, 1/2 on r01, 1/3 on r016.
        // BSR: 1 on r1, 1/2 on r01, 1/3 on r016.
        let mut m = ConjunctiveMapping::new(vec!["r1".into(), "r01".into(), "r016".into()]);
        let addss = InstId(0);
        let bsr = InstId(1);
        m.set_usage(addss, vec![0.0, 0.5, 1.0 / 3.0]);
        m.set_usage(bsr, vec![1.0, 0.5, 1.0 / 3.0]);
        (m, addss, bsr)
    }

    #[test]
    fn paper_throughput_example_addss2_bsr() {
        let (m, addss, bsr) = example();
        let k = Microkernel::pair(addss, 2, bsr, 1);
        // t = max(1, 1.5, 1) = 1.5; IPC = 3 / 1.5 = 2 (paper Sec. IV example).
        assert!((m.execution_time(&k) - 1.5).abs() < 1e-12);
        assert!((m.ipc(&k).unwrap() - 2.0).abs() < 1e-12);
        let (r, load) = m.bottleneck(&k).unwrap();
        assert_eq!(m.resource_name(r), "r01");
        assert!((load - 1.5).abs() < 1e-12);
    }

    #[test]
    fn paper_throughput_example_addss_bsr2() {
        let (m, addss, bsr) = example();
        let k = Microkernel::pair(addss, 1, bsr, 2);
        // Bottleneck is r1 with load 2; IPC = 3/2.
        assert!((m.execution_time(&k) - 2.0).abs() < 1e-12);
        assert!((m.ipc(&k).unwrap() - 1.5).abs() < 1e-12);
        assert_eq!(m.resource_name(m.bottleneck(&k).unwrap().0), "r1");
    }

    #[test]
    fn unmapped_instructions_contribute_nothing() {
        let (m, addss, _) = example();
        let unknown = InstId(99);
        let k = Microkernel::pair(addss, 1, unknown, 5);
        // Only ADDSS contributes load (0.5 on r01), but all 6 instructions count.
        assert!((m.execution_time(&k) - 0.5).abs() < 1e-12);
        assert!((m.ipc(&k).unwrap() - 12.0).abs() < 1e-12);
    }

    #[test]
    fn empty_kernel_has_no_ipc() {
        let (m, _, _) = example();
        assert!(m.ipc(&Microkernel::new()).is_none());
        assert!(m.bottleneck(&Microkernel::new()).is_none());
    }

    #[test]
    fn consumption_and_coverage() {
        let (m, addss, bsr) = example();
        assert!((m.consumption(addss) - (0.5 + 1.0 / 3.0)).abs() < 1e-12);
        assert!((m.consumption(bsr) - (1.0 + 0.5 + 1.0 / 3.0)).abs() < 1e-12);
        assert_eq!(m.consumption(InstId(42)), 0.0);
        let insts = InstructionSet::paper_example();
        // Only 2 of the 6 paper instructions are mapped here.
        assert!((m.coverage(&insts) - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn kernel_load_into_matches_allocating_variant_and_reuses_capacity() {
        let (m, addss, bsr) = example();
        let k = Microkernel::pair(addss, 2, bsr, 1);
        let mut scratch = vec![99.0; 17];
        m.kernel_load_into(&k, &mut scratch);
        assert_eq!(scratch, m.kernel_load(&k));
        let capacity = scratch.capacity();
        assert!((m.execution_time_with(&k, &mut scratch) - 1.5).abs() < 1e-12);
        assert!((m.ipc_with(&k, &mut scratch).unwrap() - 2.0).abs() < 1e-12);
        let (r, load) = m.bottleneck_with(&k, &mut scratch).unwrap();
        assert_eq!(m.resource_name(r), "r01");
        assert!((load - 1.5).abs() < 1e-12);
        assert_eq!(scratch.capacity(), capacity, "scratch must be reused, not reallocated");
    }

    #[test]
    fn prune_removes_unused_resources() {
        let mut m = ConjunctiveMapping::with_resources(3);
        m.set_usage(InstId(0), vec![1.0, 0.0, 0.5]);
        m.set_usage(InstId(1), vec![0.0, 0.0, 0.25]);
        let dropped = m.prune_unused_resources();
        assert_eq!(dropped, 1);
        assert_eq!(m.num_resources(), 2);
        assert_eq!(m.usage_vector(InstId(0)).unwrap(), &[1.0, 0.5]);
    }

    #[test]
    #[should_panic(expected = "usage vector length")]
    fn mismatched_usage_length_panics() {
        let mut m = ConjunctiveMapping::with_resources(2);
        m.set_usage(InstId(0), vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_usage_panics() {
        let mut m = ConjunctiveMapping::with_resources(1);
        m.set_usage(InstId(0), vec![-0.5]);
    }

    #[test]
    fn render_contains_instruction_names() {
        let (m, _, _) = example();
        let insts = InstructionSet::paper_example();
        let rendered = m.render(&insts);
        assert!(rendered.contains("DIVPS") || rendered.contains("VCVTT"));
        assert!(rendered.contains("r01"));
    }
}
