//! The end-to-end Palmed pipeline (Fig. 3 of the paper).
//!
//! ```text
//!  instruction list
//!        │  per-extension quadratic benchmarks (a, aabb)
//!        ▼
//!  basic-instruction selection (Algo 1)      [select]
//!        │  combined basic set
//!        ▼
//!  core-mapping shape (LP1 / Algo 3)         [lp1]
//!        │  + enrichment benchmarks
//!        ▼
//!  core-mapping weights (LP2 / Algo 4)       [lp2]
//!        │  + saturating kernels             [saturate]
//!        ▼
//!  complete mapping (LPAUX / Algo 5)         [lpaux]
//!        ▼
//!  conjunctive resource mapping + report
//! ```
//!
//! The pipeline talks to the machine exclusively through the
//! [`Measurer`] trait — cycle measurements only,
//! no hardware counters — which is the paper's central constraint.

use crate::conjunctive::ConjunctiveMapping;
use crate::lp1::{discover_shape, ShapeConfig};
use crate::lp2::{solve_bwp, BwpConfig};
use crate::lpaux::{complete_mapping, CompletionConfig, CompletionOutcome};
use crate::predict::PalmedPredictor;
use crate::quadratic::{QuadraticCampaign, QuadraticConfig};
use crate::report::MappingReport;
use crate::saturate::{select_saturating_kernels, SaturatingKernels};
use crate::select::{select_basic_instructions, Selection, SelectionConfig};
use palmed_isa::{Extension, InstId};
use palmed_machine::Measurer;
use std::time::Instant;

/// Configuration of a full inference run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PalmedConfig {
    /// Quadratic-campaign settings (IPC threshold, rounding, `M`).
    pub quadratic: QuadraticConfig,
    /// Basic-instruction selection settings (per extension).
    pub selection: SelectionConfig,
    /// Shape-discovery settings (LP1).
    pub shape: ShapeConfig,
    /// Weight-assignment settings (LP2).
    pub bwp: BwpConfig,
    /// Per-instruction completion settings (LPAUX).
    pub completion: CompletionConfig,
    /// Minimum relative usage for a benchmark to count as saturating a
    /// resource when picking saturating kernels.
    pub saturation_threshold: f64,
}

impl Default for PalmedConfig {
    fn default() -> Self {
        PalmedConfig {
            quadratic: QuadraticConfig::default(),
            selection: SelectionConfig::default(),
            shape: ShapeConfig::default(),
            bwp: BwpConfig::default(),
            completion: CompletionConfig::default(),
            saturation_threshold: 0.95,
        }
    }
}

impl PalmedConfig {
    /// A configuration suited to small pedagogical machines: fewer basic
    /// instructions, exhaustive strategies.
    pub fn small() -> Self {
        PalmedConfig {
            selection: SelectionConfig { target_count: 5, ..SelectionConfig::default() },
            ..PalmedConfig::default()
        }
    }

    /// A configuration suited to the full synthetic inventories of the
    /// evaluation (larger basic set, constructive shape discovery).
    pub fn evaluation() -> Self {
        PalmedConfig {
            selection: SelectionConfig { target_count: 6, ..SelectionConfig::default() },
            ..PalmedConfig::default()
        }
    }
}

/// The complete output of an inference run.
#[derive(Debug, Clone)]
pub struct PalmedResult {
    /// The inferred conjunctive resource mapping over the whole ISA.
    pub mapping: ConjunctiveMapping,
    /// Per-extension basic-instruction selections.
    pub selections: Vec<(Extension, Selection)>,
    /// The saturating kernel of every resource.
    pub saturating: SaturatingKernels,
    /// Instructions that could not be mapped, with the reason.
    pub skipped: Vec<(InstId, String)>,
    /// Statistics for Table II.
    pub report: MappingReport,
}

impl PalmedResult {
    /// Wraps the mapping into a [`PalmedPredictor`].
    pub fn predictor(&self) -> PalmedPredictor {
        PalmedPredictor::new(self.mapping.clone())
    }

    /// The combined basic-instruction set used for the core mapping.
    pub fn basic_instructions(&self) -> Vec<InstId> {
        self.selections.iter().flat_map(|(_, s)| s.basic.iter().copied()).collect()
    }
}

/// The Palmed inference driver.
#[derive(Debug, Clone, Default)]
pub struct Palmed {
    config: PalmedConfig,
}

impl Palmed {
    /// Creates a driver with the given configuration.
    pub fn new(config: PalmedConfig) -> Self {
        Palmed { config }
    }

    /// The configuration of this driver.
    pub fn config(&self) -> &PalmedConfig {
        &self.config
    }

    /// Runs the full pipeline against `measurer` for every instruction of its
    /// instruction set.
    pub fn infer<M: Measurer + Sync>(&self, measurer: &M) -> PalmedResult {
        let all: Vec<InstId> = measurer.instructions().ids().collect();
        self.infer_subset(measurer, &all)
    }

    /// Runs the full pipeline for a subset of instructions (useful for
    /// partial / incremental mappings and for tests).
    pub fn infer_subset<M: Measurer + Sync>(
        &self,
        measurer: &M,
        instructions: &[InstId],
    ) -> PalmedResult {
        let insts = measurer.instructions();
        let config = &self.config;
        let compatible = |a: InstId, b: InstId| {
            insts.desc(a).extension.compatible_with(insts.desc(b).extension)
        };

        let mut bench_time = std::time::Duration::ZERO;
        let mut lp_time = std::time::Duration::ZERO;
        let mut benchmarks = 0usize;

        // ---- Phase 1: per-extension quadratic campaigns and selection. ----
        let start = Instant::now();
        let select_span = palmed_obs::span("trainer.select");
        let mut selections: Vec<(Extension, Selection)> = Vec::new();
        for extension in Extension::ALL {
            let candidates: Vec<InstId> = instructions
                .iter()
                .copied()
                .filter(|&i| insts.desc(i).extension == extension)
                .collect();
            if candidates.is_empty() {
                continue;
            }
            let campaign =
                QuadraticCampaign::run(measurer, &candidates, config.quadratic, compatible);
            benchmarks += campaign.num_benchmarks();
            let selection = select_basic_instructions(&campaign, &candidates, &config.selection);
            selections.push((extension, selection));
        }
        let combined_basic: Vec<InstId> =
            selections.iter().flat_map(|(_, s)| s.basic.iter().copied()).collect();
        drop(select_span);
        bench_time += start.elapsed();

        if combined_basic.is_empty() {
            return PalmedResult {
                mapping: ConjunctiveMapping::with_resources(0),
                selections,
                saturating: SaturatingKernels::default(),
                skipped: instructions.iter().map(|&i| (i, "no basic instruction".into())).collect(),
                report: MappingReport {
                    machine: "unknown".into(),
                    instructions_total: instructions.len(),
                    ..MappingReport::default()
                },
            };
        }

        // ---- Phase 2: core mapping (LP1 shape + LP2 weights). ----
        let start = Instant::now();
        let basic_campaign =
            QuadraticCampaign::run(measurer, &combined_basic, config.quadratic, compatible);
        benchmarks += basic_campaign.num_benchmarks();
        // A combined selection view over the union of the per-extension sets:
        // the very-basic / greedy split is preserved per extension.
        let combined_selection = Selection {
            basic: combined_basic.clone(),
            very_basic: selections
                .iter()
                .flat_map(|(_, s)| s.very_basic.iter().copied())
                .collect(),
            most_greedy: selections
                .iter()
                .flat_map(|(_, s)| s.most_greedy.iter().copied())
                .collect(),
            representatives: combined_basic.clone(),
            classes: combined_basic.iter().map(|&i| vec![i]).collect(),
            low_ipc: selections.iter().flat_map(|(_, s)| s.low_ipc.iter().copied()).collect(),
        };
        bench_time += start.elapsed();

        let start = Instant::now();
        let lp1_span = palmed_obs::span("trainer.lp1");
        let shape = discover_shape(measurer, &basic_campaign, &combined_selection, &config.shape);
        drop(lp1_span);
        benchmarks += shape.kernels.len();
        let lp2_span = palmed_obs::span("trainer.lp2");
        let bwp = solve_bwp(&shape, &shape.kernels, &config.bwp)
            .expect("the BWP relaxation is always feasible");
        drop(lp2_span);
        let mut mapping = bwp.mapping;
        let saturating =
            select_saturating_kernels(&mapping, &shape, config.saturation_threshold);
        lp_time += start.elapsed();

        // ---- Phase 3: complete mapping (LPAUX). ----
        let start = Instant::now();
        let lpaux_span = palmed_obs::span("trainer.lpaux");
        let remaining: Vec<InstId> = instructions
            .iter()
            .copied()
            .filter(|i| !mapping.supports(*i))
            .collect();
        let outcomes = complete_mapping(
            measurer,
            &mut mapping,
            &saturating,
            &remaining,
            &config.completion,
        );
        benchmarks += remaining.len() * saturating.num_saturated();
        let mut skipped = Vec::new();
        for (inst, outcome) in outcomes {
            match outcome {
                CompletionOutcome::Mapped => {}
                CompletionOutcome::SkippedLowIpc(ipc) => {
                    skipped.push((inst, format!("IPC {ipc:.3} below threshold")));
                }
                CompletionOutcome::Failed(e) => skipped.push((inst, format!("LP failure: {e}"))),
            }
        }
        drop(lpaux_span);
        lp_time += start.elapsed();

        // Attach human-readable resource names derived from the heaviest
        // users, mirroring the paper's r0/r01/... naming convention.
        name_resources(&mut mapping, measurer);

        let report = MappingReport {
            machine: "measured-machine".to_string(),
            instructions_total: instructions.len(),
            instructions_mapped: mapping.num_instructions(),
            instructions_skipped: skipped.len(),
            basic_instructions: combined_basic.len(),
            resources_found: mapping.num_resources(),
            benchmarks_generated: benchmarks.max(measurer.measurement_count()),
            benchmarking_time: bench_time,
            lp_time,
        };

        palmed_obs::counter!("trainer.benchmarks").add(report.benchmarks_generated as u64);
        palmed_obs::event!(
            "trainer.mapping_inferred",
            benchmarks = report.benchmarks_generated,
            kernels = mapping.num_instructions(),
        );

        PalmedResult { mapping, selections, saturating, skipped, report }
    }
}

/// Gives each abstract resource a readable name based on its heaviest users.
fn name_resources<M: Measurer>(mapping: &mut ConjunctiveMapping, measurer: &M) {
    let insts = measurer.instructions();
    let resources: Vec<_> = mapping.resources().collect();
    for r in resources {
        let mut best: Option<(InstId, f64)> = None;
        for inst in mapping.instructions() {
            let u = mapping.usage(inst, r);
            if u > 1e-9 && best.is_none_or(|(_, b)| u > b) {
                best = Some((inst, u));
            }
        }
        if let Some((inst, _)) = best {
            let users = mapping
                .instructions()
                .filter(|&i| mapping.usage(i, r) > 1e-9)
                .count();
            mapping.set_resource_name(r, format!("R{}_{}x{}", r.index(), insts.name(inst), users));
        }
    }
}

/// Convenience helper: infers a mapping and returns the predictor directly.
pub fn infer_predictor<M: Measurer + Sync>(measurer: &M, config: PalmedConfig) -> PalmedPredictor {
    Palmed::new(config).infer(measurer).predictor()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThroughputPredictor;
    use palmed_isa::{InventoryConfig, Microkernel};
    use palmed_machine::{presets, AnalyticMeasurer, MemoizingMeasurer};

    #[test]
    fn full_pipeline_on_the_paper_machine_predicts_well() {
        let preset = presets::paper_ports016();
        let measurer = MemoizingMeasurer::new(AnalyticMeasurer::new(preset.mapping_arc()));
        let result = Palmed::new(PalmedConfig::small()).infer(&measurer);
        assert_eq!(result.mapping.coverage(&preset.instructions), 1.0);
        assert!(result.report.resources_found >= 3);
        assert!(result.report.benchmarks_generated > 10);

        let predictor = result.predictor();
        let native = AnalyticMeasurer::new(preset.mapping_arc());
        let find = |n: &str| preset.instructions.find(n).unwrap();
        let kernels = [
            Microkernel::single(find("ADDSS")).scaled(4),
            Microkernel::single(find("BSR")).scaled(4),
            Microkernel::pair(find("ADDSS"), 2, find("BSR"), 1),
            Microkernel::pair(find("ADDSS"), 1, find("BSR"), 2),
            Microkernel::from_counts([(find("JNLE"), 2), (find("JMP"), 1), (find("BSR"), 1)]),
            Microkernel::from_counts([(find("DIVPS"), 1), (find("ADDSS"), 2), (find("VCVTT"), 1)]),
        ];
        for k in kernels {
            let predicted = predictor.predict_ipc(&k).unwrap();
            let reference = palmed_machine::Measurer::ipc(&native, &k);
            // The DIVPS ADDSS^2 VCVTT kernel sits *exactly* at 25% relative
            // error (predicted 2.0 vs native 1.6) for the mapping this
            // pipeline converges to, so the bound carries an epsilon: which
            // side of 0.25 the division lands on is floating-point dust that
            // changes with the solver's operation order.
            assert!(
                (predicted - reference).abs() / reference < 0.25 + 1e-9,
                "kernel {k}: predicted {predicted:.3}, native {reference:.3}"
            );
        }
    }

    #[test]
    fn pipeline_on_toy_machine_maps_everything() {
        let preset = presets::toy_two_port();
        let measurer = MemoizingMeasurer::new(AnalyticMeasurer::new(preset.mapping_arc()));
        let result = Palmed::new(PalmedConfig::small()).infer(&measurer);
        assert_eq!(result.mapping.coverage(&preset.instructions), 1.0);
        assert!(result.skipped.is_empty());
        assert!(result.report.lp_time > std::time::Duration::ZERO);
    }

    #[test]
    fn pipeline_subset_only_maps_the_requested_instructions() {
        let preset = presets::skl_sp(&InventoryConfig::small());
        let measurer = MemoizingMeasurer::new(AnalyticMeasurer::new(preset.mapping_arc()));
        let subset: Vec<InstId> = ["ADD", "BSR", "JMP", "LEA", "IMUL", "MOV_LD"]
            .iter()
            .map(|n| preset.instructions.find(n).unwrap())
            .collect();
        let result = Palmed::new(PalmedConfig::small()).infer_subset(&measurer, &subset);
        for &inst in &subset {
            assert!(result.mapping.supports(inst), "{:?} unmapped", preset.instructions.name(inst));
        }
        assert_eq!(result.report.instructions_total, subset.len());
    }

    #[test]
    fn empty_instruction_list_is_handled_gracefully() {
        let preset = presets::toy_two_port();
        let measurer = AnalyticMeasurer::new(preset.mapping_arc());
        let result = Palmed::new(PalmedConfig::default()).infer_subset(&measurer, &[]);
        assert_eq!(result.mapping.num_instructions(), 0);
        assert_eq!(result.report.instructions_total, 0);
    }
}
