//! Mapping statistics — the data behind Table II of the paper.
//!
//! Table II reports, for every target machine: the benchmarking time, the LP
//! solving time, the number of generated microbenchmarks, the number of
//! abstract resources found and the number of instructions mapped.  The
//! [`MappingReport`] collects the same quantities during an inference run so
//! the table can be regenerated (`cargo run -p palmed-bench --bin table2`).

use std::fmt;
use std::time::Duration;

/// Statistics of one Palmed inference run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MappingReport {
    /// Name of the measured machine.
    pub machine: String,
    /// Total number of instructions offered to the pipeline.
    pub instructions_total: usize,
    /// Number of instructions that ended up with a resource mapping.
    pub instructions_mapped: usize,
    /// Number of instructions skipped (below the IPC threshold, ...).
    pub instructions_skipped: usize,
    /// Number of basic instructions selected for the core mapping.
    pub basic_instructions: usize,
    /// Number of abstract resources in the final mapping.
    pub resources_found: usize,
    /// Number of distinct microbenchmarks generated and measured.
    pub benchmarks_generated: usize,
    /// Wall-clock time spent generating and measuring benchmarks.
    pub benchmarking_time: Duration,
    /// Wall-clock time spent solving linear programs.
    pub lp_time: Duration,
}

impl MappingReport {
    /// Total wall-clock time (benchmarking + solving).
    pub fn overall_time(&self) -> Duration {
        self.benchmarking_time + self.lp_time
    }

    /// Fraction of offered instructions that were mapped.
    pub fn mapped_fraction(&self) -> f64 {
        if self.instructions_total == 0 {
            0.0
        } else {
            self.instructions_mapped as f64 / self.instructions_total as f64
        }
    }

    /// Renders the report as one column of Table II.
    pub fn table_rows(&self) -> Vec<(String, String)> {
        vec![
            ("Machine".to_string(), self.machine.clone()),
            (
                "Benchmarking time".to_string(),
                format!("{:.2} s", self.benchmarking_time.as_secs_f64()),
            ),
            ("LP solving time".to_string(), format!("{:.2} s", self.lp_time.as_secs_f64())),
            ("Overall time".to_string(), format!("{:.2} s", self.overall_time().as_secs_f64())),
            ("Gen. microbenchmarks".to_string(), self.benchmarks_generated.to_string()),
            ("Resources found".to_string(), self.resources_found.to_string()),
            ("Basic instructions".to_string(), self.basic_instructions.to_string()),
            ("Instructions offered".to_string(), self.instructions_total.to_string()),
            ("Instructions mapped".to_string(), self.instructions_mapped.to_string()),
        ]
    }
}

impl fmt::Display for MappingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (label, value) in self.table_rows() {
            writeln!(f, "{label:<24} {value}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MappingReport {
        MappingReport {
            machine: "skl-sp-like".into(),
            instructions_total: 400,
            instructions_mapped: 390,
            instructions_skipped: 10,
            basic_instructions: 12,
            resources_found: 14,
            benchmarks_generated: 25_000,
            benchmarking_time: Duration::from_secs_f64(12.5),
            lp_time: Duration::from_secs_f64(3.25),
        }
    }

    #[test]
    fn totals_and_fractions() {
        let r = sample();
        assert_eq!(r.overall_time(), Duration::from_secs_f64(15.75));
        assert!((r.mapped_fraction() - 0.975).abs() < 1e-12);
        assert_eq!(MappingReport::default().mapped_fraction(), 0.0);
    }

    #[test]
    fn display_contains_table_ii_fields() {
        let text = sample().to_string();
        for needle in
            ["Benchmarking time", "LP solving time", "Gen. microbenchmarks", "Resources found", "Instructions mapped"]
        {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
    }
}
