//! Instruction inventories.
//!
//! The real Palmed extracts its instruction list from Intel XED (several
//! thousand benchmarkable instructions).  The statistically relevant
//! structure of that list — and the reason Palmed scales — is that thousands
//! of mnemonics collapse onto a few tens of distinct port behaviours (the
//! paper's example: 754 instructions on ports {0,1,6} form only 9 classes).
//! [`InstructionSet::synthetic`] reproduces that structure: a configurable
//! number of named opcode variants is generated for every
//! [`ExecClass`], so the inference pipeline sees a large
//! instruction list with realistic redundancy.

use crate::inst::{ExecClass, Extension, InstDesc, InstId};
use crate::intern::FxBuildHasher;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// An ordered collection of instruction descriptors.
///
/// The name index maps the Fx hash of a name to its id instead of keying by
/// owned `String`s: inserting never clones the name, and lookups are one
/// cheap hash plus one name comparison.  Names whose hashes collide (never
/// observed in practice) go to a small overflow list scanned linearly.
/// SipHash resistance buys nothing here — names are short trusted mnemonics
/// inserted once at build time, and collisions only cost extra comparisons.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct InstructionSet {
    descs: Vec<InstDesc>,
    #[serde(skip)]
    by_name: HashMap<u64, InstId, FxBuildHasher>,
    #[serde(skip)]
    name_overflow: Vec<InstId>,
}

/// Two sets are equal when they hold the same descriptors in the same order
/// (the name index is derived state).
impl PartialEq for InstructionSet {
    fn eq(&self, other: &Self) -> bool {
        self.descs == other.descs
    }
}

impl Eq for InstructionSet {}

/// Fx hash of an instruction name, the key of the name index.
fn name_hash(name: &str) -> u64 {
    use std::hash::Hasher;
    let mut hasher = crate::intern::FxLikeHasher::default();
    hasher.write(name.as_bytes());
    hasher.write_usize(name.len());
    hasher.finish()
}

impl InstructionSet {
    /// Creates an empty instruction set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a set from descriptors.
    ///
    /// # Panics
    ///
    /// Panics if two descriptors share a name.
    pub fn from_descs(descs: impl IntoIterator<Item = InstDesc>) -> Self {
        let mut set = Self::new();
        for d in descs {
            set.push(d);
        }
        set
    }

    /// Adds a descriptor and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if the name is already present.
    pub fn push(&mut self, desc: InstDesc) -> InstId {
        match self.try_push(desc) {
            Ok(id) => id,
            Err(desc) => panic!("duplicate instruction name `{}`", desc.name),
        }
    }

    /// Adds a descriptor, handing it back instead of panicking when the name
    /// is already present (the codec path for untrusted artifacts).
    pub fn try_push(&mut self, desc: InstDesc) -> Result<InstId, InstDesc> {
        let id = InstId(self.descs.len() as u32);
        match self.by_name.entry(name_hash(&desc.name)) {
            // A vacant hash slot proves the name is new (equal names hash
            // equally), so the duplicate scan only runs on a hash hit.
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(id);
            }
            std::collections::hash_map::Entry::Occupied(e) => {
                let candidate = *e.get();
                if self.descs[candidate.index()].name == desc.name
                    || self
                        .name_overflow
                        .iter()
                        .any(|&i| self.descs[i.index()].name == desc.name)
                {
                    return Err(desc);
                }
                self.name_overflow.push(id);
            }
        }
        self.descs.push(desc);
        Ok(id)
    }

    /// Reserves room for `additional` more instructions in the descriptor
    /// table and the name index (bulk-load paths).
    pub fn reserve(&mut self, additional: usize) {
        self.descs.reserve(additional);
        self.by_name.reserve(additional);
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.descs.len()
    }

    /// True when the set contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.descs.is_empty()
    }

    /// Descriptor of an instruction.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this set.
    pub fn desc(&self, id: InstId) -> &InstDesc {
        &self.descs[id.index()]
    }

    /// Name of an instruction (shorthand for `desc(id).name`).
    pub fn name(&self, id: InstId) -> &str {
        &self.desc(id).name
    }

    /// Looks an instruction up by name.
    pub fn find(&self, name: &str) -> Option<InstId> {
        let id = *self.by_name.get(&name_hash(name))?;
        if self.descs[id.index()].name == name {
            return Some(id);
        }
        // Hash hit on a different name: the target, if present, collided its
        // way into the overflow list.
        self.name_overflow.iter().copied().find(|&i| self.descs[i.index()].name == name)
    }

    /// Iterates over all instruction ids in order.
    pub fn ids(&self) -> impl Iterator<Item = InstId> + '_ {
        (0..self.descs.len() as u32).map(InstId)
    }

    /// Iterates over `(id, descriptor)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (InstId, &InstDesc)> + '_ {
        self.descs.iter().enumerate().map(|(i, d)| (InstId(i as u32), d))
    }

    /// Ids of all instructions belonging to the given extension.
    pub fn ids_with_extension(&self, extension: Extension) -> Vec<InstId> {
        self.iter().filter(|(_, d)| d.extension == extension).map(|(i, _)| i).collect()
    }

    /// Ids of all instructions with the given ground-truth class.
    pub fn ids_with_class(&self, class: ExecClass) -> Vec<InstId> {
        self.iter().filter(|(_, d)| d.class == class).map(|(i, _)| i).collect()
    }

    /// Rebuilds the name index (needed after deserialisation).
    pub fn rebuild_index(&mut self) {
        self.by_name = HashMap::with_capacity_and_hasher(self.descs.len(), Default::default());
        self.name_overflow.clear();
        for (i, desc) in self.descs.iter().enumerate() {
            let id = InstId(i as u32);
            match self.by_name.entry(name_hash(&desc.name)) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(id);
                }
                std::collections::hash_map::Entry::Occupied(_) => self.name_overflow.push(id),
            }
        }
    }

    /// Builds a synthetic x86-flavoured inventory according to `config`.
    pub fn synthetic(config: &InventoryConfig) -> Self {
        let mut set = Self::new();
        for &(class, mnemonics) in CLASS_MNEMONICS {
            let variants = config.variants_for(class);
            for mnemonic in mnemonics {
                for v in 0..variants {
                    let name = if variants == 1 {
                        (*mnemonic).to_string()
                    } else {
                        format!("{}_{}", mnemonic, VARIANT_SUFFIXES[v % VARIANT_SUFFIXES.len()])
                    };
                    set.push(InstDesc::new(name, class));
                }
            }
        }
        set
    }

    /// The small six-instruction set used throughout Sec. III of the paper
    /// (DIVPS, VCVTT, ADDSS, BSR, JNLE, JMP restricted to ports 0/1/6).
    pub fn paper_example() -> Self {
        Self::from_descs([
            InstDesc::new("DIVPS", ExecClass::FpDivSse),
            InstDesc::new("VCVTT", ExecClass::VecCvtSse),
            InstDesc::new("ADDSS", ExecClass::FpAddSse),
            InstDesc::new("BSR", ExecClass::IntAluRestricted),
            InstDesc::new("JNLE", ExecClass::Branch),
            InstDesc::new("JMP", ExecClass::Jump),
        ])
    }
}

impl std::ops::Index<InstId> for InstructionSet {
    type Output = InstDesc;
    fn index(&self, index: InstId) -> &Self::Output {
        self.desc(index)
    }
}

/// Operand-width / addressing-mode suffixes used to expand mnemonics into
/// several synthetic variants with identical behaviour.
const VARIANT_SUFFIXES: &[&str] = &[
    "R8", "R16", "R32", "R64", "I8", "I32", "XMM", "YMM", "M32", "M64", "RR", "RI", "RM", "MR",
];

/// Mnemonic pools per execution class.  Names are real x86 mnemonics chosen
/// so that generated inventories read naturally in reports.
const CLASS_MNEMONICS: &[(ExecClass, &[&str])] = &[
    (
        ExecClass::IntAlu,
        &[
            "ADD", "SUB", "AND", "OR", "XOR", "CMP", "TEST", "INC", "DEC", "NEG", "NOT", "MOV",
            "MOVZX", "MOVSX", "SETCC", "CMOVCC",
        ],
    ),
    (ExecClass::IntAluRestricted, &["BSR", "BSF", "LZCNT", "TZCNT", "POPCNT", "PDEP", "PEXT"]),
    (ExecClass::IntMul, &["IMUL", "MUL", "MULX"]),
    (ExecClass::IntDiv, &["IDIV", "DIV"]),
    (ExecClass::Lea, &["LEA", "LEA_B", "LEA_BIS"]),
    (ExecClass::Branch, &["JNLE", "JE", "JNE", "JL", "JGE", "JB", "JAE", "JO", "JS"]),
    (ExecClass::Jump, &["JMP", "JMP_IND", "CALL_DIR"]),
    (ExecClass::Load, &["MOV_LD", "MOVQ_LD", "MOVD_LD", "LODS"]),
    (ExecClass::Store, &["MOV_ST", "MOVQ_ST", "MOVD_ST", "STOS"]),
    (ExecClass::FpAddSse, &["ADDSS", "ADDSD", "ADDPS", "ADDPD", "SUBSS", "SUBSD", "SUBPS", "SUBPD"]),
    (
        ExecClass::FpMulSse,
        &["MULSS", "MULSD", "MULPS", "MULPD", "FMADD132SS", "FMADD213PS", "FMADD231SD"],
    ),
    (ExecClass::FpDivSse, &["DIVSS", "DIVSD", "DIVPS", "DIVPD", "SQRTSS", "SQRTPS"]),
    (
        ExecClass::VecAluSse,
        &["PADDD", "PADDQ", "PSUBD", "PAND", "POR", "PXOR", "PCMPEQD", "PMAXSD", "PMINSD"],
    ),
    (ExecClass::VecShuffleSse, &["PSHUFD", "PSHUFB", "UNPCKLPS", "UNPCKHPD", "PUNPCKLDQ", "SHUFPS"]),
    (ExecClass::VecCvtSse, &["VCVTT", "CVTSS2SD", "CVTSD2SS", "CVTDQ2PS", "CVTPS2DQ"]),
    (ExecClass::FpAddAvx, &["VADDPS", "VADDPD", "VSUBPS", "VSUBPD"]),
    (ExecClass::FpMulAvx, &["VMULPS", "VMULPD", "VFMADD132PS", "VFMADD213PD", "VFMADD231PS"]),
    (ExecClass::FpDivAvx, &["VDIVPS", "VDIVPD", "VSQRTPS"]),
    (ExecClass::VecAluAvx, &["VPADDD", "VPSUBD", "VPAND", "VPOR", "VPXOR", "VANDPS", "VORPS"]),
    (ExecClass::VecShuffleAvx, &["VPERMD", "VPERMILPS", "VSHUFPS", "VUNPCKLPS", "VBLENDPS"]),
    (ExecClass::VecStore, &["VMOVAPS_ST", "VMOVUPS_ST", "MOVAPS_ST", "MOVUPS_ST"]),
    (ExecClass::VecLoad, &["VMOVAPS_LD", "VMOVUPS_LD", "MOVAPS_LD", "MOVUPS_LD"]),
];

/// Controls how large the synthetic inventory is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InventoryConfig {
    /// Number of named variants generated per mnemonic for scalar classes.
    pub scalar_variants: usize,
    /// Number of named variants generated per mnemonic for vector classes.
    pub vector_variants: usize,
}

impl Default for InventoryConfig {
    fn default() -> Self {
        // ~ (16+7+3+2+3+10+4+4) * 4 + vector mnemonics * 3 ≈ 400 instructions.
        InventoryConfig { scalar_variants: 4, vector_variants: 3 }
    }
}

impl InventoryConfig {
    /// A small inventory (one variant per mnemonic), handy for fast tests.
    pub fn small() -> Self {
        InventoryConfig { scalar_variants: 1, vector_variants: 1 }
    }

    /// A large inventory approaching the size of the paper's supported set.
    pub fn large() -> Self {
        InventoryConfig { scalar_variants: 14, vector_variants: 10 }
    }

    fn variants_for(&self, class: ExecClass) -> usize {
        match class.extension() {
            Extension::BaseIsa => self.scalar_variants.max(1),
            Extension::Sse | Extension::Avx => self.vector_variants.max(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_lookup() {
        let mut set = InstructionSet::new();
        let a = set.push(InstDesc::new("ADD", ExecClass::IntAlu));
        let b = set.push(InstDesc::new("MULSS", ExecClass::FpMulSse));
        assert_eq!(set.len(), 2);
        assert_eq!(set.find("ADD"), Some(a));
        assert_eq!(set.find("MULSS"), Some(b));
        assert_eq!(set.find("NOPE"), None);
        assert_eq!(set.name(a), "ADD");
        assert_eq!(set[a].class, ExecClass::IntAlu);
    }

    #[test]
    #[should_panic(expected = "duplicate instruction name")]
    fn duplicate_names_panic() {
        let mut set = InstructionSet::new();
        set.push(InstDesc::new("ADD", ExecClass::IntAlu));
        set.push(InstDesc::new("ADD", ExecClass::IntMul));
    }

    #[test]
    fn synthetic_small_covers_every_class() {
        let set = InstructionSet::synthetic(&InventoryConfig::small());
        for class in ExecClass::ALL {
            assert!(
                !set.ids_with_class(class).is_empty(),
                "class {class} missing from synthetic inventory"
            );
        }
    }

    #[test]
    fn synthetic_default_is_reasonably_large() {
        let set = InstructionSet::synthetic(&InventoryConfig::default());
        assert!(set.len() >= 250, "only {} instructions", set.len());
        let large = InstructionSet::synthetic(&InventoryConfig::large());
        assert!(large.len() > set.len());
    }

    #[test]
    fn synthetic_names_are_unique() {
        let set = InstructionSet::synthetic(&InventoryConfig::large());
        let mut names = std::collections::HashSet::new();
        for (_, d) in set.iter() {
            assert!(names.insert(d.name.clone()), "duplicate {}", d.name);
        }
    }

    #[test]
    fn extension_filter_is_consistent() {
        let set = InstructionSet::synthetic(&InventoryConfig::default());
        let base = set.ids_with_extension(Extension::BaseIsa);
        let sse = set.ids_with_extension(Extension::Sse);
        let avx = set.ids_with_extension(Extension::Avx);
        assert_eq!(base.len() + sse.len() + avx.len(), set.len());
        for id in base {
            assert_eq!(set[id].extension, Extension::BaseIsa);
        }
    }

    #[test]
    fn paper_example_has_six_instructions() {
        let set = InstructionSet::paper_example();
        assert_eq!(set.len(), 6);
        assert!(set.find("ADDSS").is_some());
        assert!(set.find("DIVPS").is_some());
    }

    #[test]
    fn rebuild_index_restores_lookup() {
        let set = InstructionSet::synthetic(&InventoryConfig::small());
        let mut clone = InstructionSet {
            descs: set.descs.clone(),
            by_name: HashMap::default(),
            name_overflow: Vec::new(),
        };
        assert_eq!(clone.find("ADD"), None);
        clone.rebuild_index();
        assert_eq!(clone.find("ADD"), set.find("ADD"));
    }
}
