//! Instruction descriptors.
//!
//! An *instruction* here is a symbolic entity: Palmed never inspects operands
//! or encodings, it only needs a stable identity to benchmark and to attach a
//! resource mapping to.  The [`ExecClass`] is the ground-truth behaviour used
//! by the machine simulator (the analogue of "what the silicon actually does
//! with this opcode"); Palmed itself never reads it.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an instruction inside an
/// [`InstructionSet`](crate::inventory::InstructionSet).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct InstId(pub u32);

impl InstId {
    /// Raw index into the owning instruction set.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for InstId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "I{}", self.0)
    }
}

/// ISA extension an instruction belongs to.
///
/// The paper's calibration (Sec. VI-A) runs the basic-instruction heuristics
/// separately per extension and forbids microkernels that mix vector
/// extensions of different widths (SSE + AVX), because such mixes incur
/// transition penalties that violate the order-independence assumption.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Extension {
    /// Scalar integer / control-flow / address instructions.
    BaseIsa,
    /// 128-bit SSE floating-point and integer vector instructions.
    Sse,
    /// 256-bit AVX floating-point and integer vector instructions.
    Avx,
}

impl Extension {
    /// All extensions in a stable order.
    pub const ALL: [Extension; 3] = [Extension::BaseIsa, Extension::Sse, Extension::Avx];

    /// Whether two extensions may appear in the same microkernel.
    ///
    /// Base-ISA instructions mix freely with either vector extension; SSE and
    /// AVX must not be mixed with each other (Sec. VI-A of the paper).
    pub fn compatible_with(self, other: Extension) -> bool {
        use Extension::*;
        !matches!((self, other), (Sse, Avx) | (Avx, Sse))
    }

    /// Parses the [`Display`](fmt::Display) form back into an extension
    /// (`"base"`, `"sse"`, `"avx"`); used by text model artifacts.
    pub fn from_name(name: &str) -> Option<Extension> {
        Extension::ALL.into_iter().find(|e| e.to_string() == name)
    }
}

impl fmt::Display for Extension {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Extension::BaseIsa => "base",
            Extension::Sse => "sse",
            Extension::Avx => "avx",
        };
        f.write_str(s)
    }
}

/// Ground-truth execution class of an instruction.
///
/// This is the hidden behaviour the machine simulator uses to decompose an
/// instruction into µOPs and assign them to ports.  The set of classes is a
/// synthesis of the execution-unit families documented for Skylake-SP and
/// Zen1; every class typically covers tens to hundreds of real mnemonics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ExecClass {
    /// Simple scalar integer ALU operation (ADD, SUB, AND, CMP, ...).
    IntAlu,
    /// Scalar integer operation restricted to a subset of ALU ports
    /// (e.g. bit-scan / LZCNT-style operations on port 1 only).
    IntAluRestricted,
    /// Scalar integer multiply.
    IntMul,
    /// Scalar integer divide (non-pipelined).
    IntDiv,
    /// Address-generation style operation (LEA).
    Lea,
    /// Conditional branch (on Skylake-like cores: ports 0 and 6).
    Branch,
    /// Unconditional direct jump (dedicated branch port only).
    Jump,
    /// Memory load (L1 hit).
    Load,
    /// Memory store (store-data + store-address µOPs).
    Store,
    /// Scalar / packed SSE floating-point add.
    FpAddSse,
    /// Scalar / packed SSE floating-point multiply or FMA.
    FpMulSse,
    /// SSE floating-point divide / square root (non-pipelined).
    FpDivSse,
    /// SSE integer vector ALU operation.
    VecAluSse,
    /// SSE shuffle / pack / unpack.
    VecShuffleSse,
    /// SSE conversion (CVT*, 2 µOPs on some machines).
    VecCvtSse,
    /// AVX 256-bit floating-point add.
    FpAddAvx,
    /// AVX 256-bit floating-point multiply or FMA.
    FpMulAvx,
    /// AVX 256-bit floating-point divide (non-pipelined).
    FpDivAvx,
    /// AVX 256-bit integer / logical vector operation.
    VecAluAvx,
    /// AVX shuffle / permute (often a single specialised port).
    VecShuffleAvx,
    /// Store of a vector register (wider store-data µOP).
    VecStore,
    /// Vector load.
    VecLoad,
}

impl ExecClass {
    /// All execution classes, in a stable order.
    pub const ALL: [ExecClass; 22] = [
        ExecClass::IntAlu,
        ExecClass::IntAluRestricted,
        ExecClass::IntMul,
        ExecClass::IntDiv,
        ExecClass::Lea,
        ExecClass::Branch,
        ExecClass::Jump,
        ExecClass::Load,
        ExecClass::Store,
        ExecClass::FpAddSse,
        ExecClass::FpMulSse,
        ExecClass::FpDivSse,
        ExecClass::VecAluSse,
        ExecClass::VecShuffleSse,
        ExecClass::VecCvtSse,
        ExecClass::FpAddAvx,
        ExecClass::FpMulAvx,
        ExecClass::FpDivAvx,
        ExecClass::VecAluAvx,
        ExecClass::VecShuffleAvx,
        ExecClass::VecStore,
        ExecClass::VecLoad,
    ];

    /// Parses the [`Display`](fmt::Display) form back into a class (e.g.
    /// `"IntAlu"`, `"FpMulAvx"`); used by text model artifacts.
    pub fn from_name(name: &str) -> Option<ExecClass> {
        ExecClass::ALL.into_iter().find(|c| c.to_string() == name)
    }

    /// Extension this class naturally belongs to.
    pub fn extension(self) -> Extension {
        use ExecClass::*;
        match self {
            IntAlu | IntAluRestricted | IntMul | IntDiv | Lea | Branch | Jump | Load | Store => {
                Extension::BaseIsa
            }
            FpAddSse | FpMulSse | FpDivSse | VecAluSse | VecShuffleSse | VecCvtSse => {
                Extension::Sse
            }
            FpAddAvx | FpMulAvx | FpDivAvx | VecAluAvx | VecShuffleAvx | VecStore | VecLoad => {
                Extension::Avx
            }
        }
    }
}

impl fmt::Display for ExecClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Full description of an instruction.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct InstDesc {
    /// Mnemonic-style name, unique within an instruction set
    /// (e.g. `"ADDSS_XMM_XMM"`).
    pub name: String,
    /// Ground-truth execution class (hidden from Palmed).
    pub class: ExecClass,
    /// ISA extension used for benchmark-mixing rules.
    pub extension: Extension,
}

impl InstDesc {
    /// Creates a descriptor, deriving the extension from the class.
    pub fn new(name: impl Into<String>, class: ExecClass) -> Self {
        InstDesc { name: name.into(), class, extension: class.extension() }
    }
}

impl fmt::Display for InstDesc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{} / {}]", self.name, self.class, self.extension)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extension_mixing_rules() {
        assert!(Extension::BaseIsa.compatible_with(Extension::Sse));
        assert!(Extension::BaseIsa.compatible_with(Extension::Avx));
        assert!(Extension::Sse.compatible_with(Extension::Sse));
        assert!(!Extension::Sse.compatible_with(Extension::Avx));
        assert!(!Extension::Avx.compatible_with(Extension::Sse));
    }

    #[test]
    fn class_extensions_are_consistent() {
        for class in ExecClass::ALL {
            let desc = InstDesc::new(format!("{class}"), class);
            assert_eq!(desc.extension, class.extension());
        }
    }

    #[test]
    fn all_classes_listed_once() {
        let mut seen = std::collections::HashSet::new();
        for class in ExecClass::ALL {
            assert!(seen.insert(class), "duplicate class {class}");
        }
        assert_eq!(seen.len(), ExecClass::ALL.len());
    }

    #[test]
    fn names_round_trip_through_from_name() {
        for class in ExecClass::ALL {
            assert_eq!(ExecClass::from_name(&class.to_string()), Some(class));
        }
        for ext in Extension::ALL {
            assert_eq!(Extension::from_name(&ext.to_string()), Some(ext));
        }
        assert_eq!(ExecClass::from_name("NotAClass"), None);
        assert_eq!(Extension::from_name("mmx"), None);
    }

    #[test]
    fn display_formats_are_nonempty() {
        assert_eq!(InstId(3).to_string(), "I3");
        assert_eq!(Extension::Sse.to_string(), "sse");
        assert!(!ExecClass::IntAlu.to_string().is_empty());
        let d = InstDesc::new("ADD", ExecClass::IntAlu);
        assert!(d.to_string().contains("ADD"));
    }
}
