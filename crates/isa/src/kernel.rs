//! Microkernels: dependency-free multisets of instructions.
//!
//! A microkernel `K = I1^σ1 I2^σ2 … Im^σm` (Def. IV.1) is an infinite loop
//! repeating a finite multiset of instructions with no dependencies between
//! them.  Because there are no dependencies, the order of instructions does
//! not matter, so a multiset (here a sorted count map) is the right
//! representation.  Palmed builds a handful of benchmark *shapes* from
//! instructions, all provided as constructors here:
//!
//! * `a` — a single instruction repeated,
//! * `aabb` — two instructions, each repeated proportionally to its own IPC,
//! * `a^M b` — M copies of `a` against one of `b` (M = 4 in the paper),
//! * `i i sat^L sat` — the LPAUX kernels combining an instruction with a
//!   saturating kernel.

use crate::inst::InstId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A multiset of instructions executed as an infinite dependency-free loop.
///
/// Multiplicities are integer repetition counts, exactly as in a concrete
/// generated benchmark body.  The paper rounds ideal (fractional, IPC-derived)
/// multiplicities to integers with a 5 % error budget;
/// [`Microkernel::from_proportions`] implements that rounding.
///
/// Internally the multiset is a flat vector of `(instruction, multiplicity)`
/// pairs, sorted by instruction id with strictly positive multiplicities —
/// kernels are tiny (a handful of distinct instructions), so a sorted vector
/// beats a tree map on every hot operation: hashing and equality walk one
/// contiguous slice, lookups are a branchless binary search, and iteration is
/// a pointer bump.  The derived `Eq`/`Hash`/`Ord` on the sorted vector are
/// exactly the multiset semantics the old `BTreeMap` representation had.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub struct Microkernel {
    /// Sorted by instruction id; every multiplicity is > 0.
    counts: Vec<(InstId, u32)>,
}

/// Adds two multiplicities: saturates at `u32::MAX` in release builds (and
/// trips a debug assertion) instead of silently wrapping around.
#[inline]
fn add_counts(a: u32, b: u32) -> u32 {
    let sum = a.checked_add(b);
    debug_assert!(sum.is_some(), "multiplicity overflow adding {a} + {b}");
    sum.unwrap_or(u32::MAX)
}

impl Microkernel {
    /// The empty microkernel (useful as a building block; not benchmarkable).
    pub fn new() -> Self {
        Self::default()
    }

    /// Kernel repeating a single instruction once per iteration.
    pub fn single(inst: InstId) -> Self {
        let mut k = Self::new();
        k.add(inst, 1);
        k
    }

    /// Kernel made of an explicit list of `(instruction, multiplicity)`
    /// pairs; zero multiplicities are ignored, duplicates are accumulated.
    pub fn from_counts(pairs: impl IntoIterator<Item = (InstId, u32)>) -> Self {
        let mut counts: Vec<(InstId, u32)> =
            pairs.into_iter().filter(|&(_, c)| c > 0).collect();
        counts.sort_unstable_by_key(|&(inst, _)| inst);
        counts.dedup_by(|cur, kept| {
            if cur.0 == kept.0 {
                kept.1 = add_counts(kept.1, cur.1);
                true
            } else {
                false
            }
        });
        Self { counts }
    }

    /// The `a^na b^nb` pair-benchmark shape.
    pub fn pair(a: InstId, na: u32, b: InstId, nb: u32) -> Self {
        Self::from_counts([(a, na), (b, nb)])
    }

    /// Builds a kernel whose multiplicities approximate the given positive
    /// real proportions with at most `tolerance` relative error, using the
    /// smallest scaling factor that achieves it (capped at `max_total`
    /// instructions per iteration).
    ///
    /// This mirrors the paper's 5 % coefficient rounding: a benchmark `aabb`
    /// with `a = 0.06`, `b = 1` becomes `a^1 b^20` (paper, Sec. VI-A).
    ///
    /// Entries with a proportion of zero (or negative) are dropped.
    pub fn from_proportions(
        proportions: impl IntoIterator<Item = (InstId, f64)>,
        tolerance: f64,
        max_total: u32,
    ) -> Self {
        let props: Vec<(InstId, f64)> =
            proportions.into_iter().filter(|&(_, p)| p > 0.0).collect();
        if props.is_empty() {
            return Self::new();
        }
        let min_prop = props.iter().map(|&(_, p)| p).fold(f64::INFINITY, f64::min);
        // Try increasing scales until every rounded count is within the
        // relative tolerance of the ideal value.
        let mut best: Option<Self> = None;
        for scale_steps in 1..=max_total {
            let scale = scale_steps as f64 / min_prop;
            let mut ok = true;
            let mut total = 0u64;
            let mut counts = Vec::with_capacity(props.len());
            for &(inst, p) in &props {
                let ideal = p * scale;
                let rounded = ideal.round().max(1.0);
                if (rounded - ideal).abs() / ideal > tolerance {
                    ok = false;
                    break;
                }
                total += rounded as u64;
                counts.push((inst, rounded as u32));
            }
            if total > max_total as u64 {
                break;
            }
            if ok {
                best = Some(Self::from_counts(counts));
                break;
            }
        }
        best.unwrap_or_else(|| {
            // Fall back to the coarsest rounding if the tolerance cannot be
            // met within the size cap.
            let scale = 1.0 / min_prop;
            Self::from_counts(
                props.iter().map(|&(inst, p)| (inst, (p * scale).round().max(1.0) as u32)),
            )
        })
    }

    /// Adds `count` repetitions of `inst` to the kernel.
    pub fn add(&mut self, inst: InstId, count: u32) {
        if count > 0 {
            match self.counts.binary_search_by_key(&inst, |&(i, _)| i) {
                Ok(pos) => self.counts[pos].1 = add_counts(self.counts[pos].1, count),
                Err(pos) => self.counts.insert(pos, (inst, count)),
            }
        }
    }

    /// Merges another kernel into this one (multiset union with addition).
    pub fn merge(&mut self, other: &Microkernel) {
        if other.counts.is_empty() {
            return;
        }
        if self.counts.is_empty() {
            self.counts.clone_from(&other.counts);
            return;
        }
        // Merge-join of the two sorted slices.
        let mut merged = Vec::with_capacity(self.counts.len() + other.counts.len());
        let (mut a, mut b) = (self.counts.iter().peekable(), other.counts.iter().peekable());
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ia, ca)), Some(&&(ib, cb))) => match ia.cmp(&ib) {
                    std::cmp::Ordering::Less => {
                        merged.push((ia, ca));
                        a.next();
                    }
                    std::cmp::Ordering::Greater => {
                        merged.push((ib, cb));
                        b.next();
                    }
                    std::cmp::Ordering::Equal => {
                        merged.push((ia, add_counts(ca, cb)));
                        a.next();
                        b.next();
                    }
                },
                (Some(_), None) => {
                    merged.extend(a.copied());
                    break;
                }
                (None, Some(_)) => {
                    merged.extend(b.copied());
                    break;
                }
                (None, None) => break,
            }
        }
        self.counts = merged;
    }

    /// Returns a new kernel equal to this one repeated `factor` times.
    ///
    /// Multiplicities that would overflow `u32` saturate at `u32::MAX` in
    /// release builds (and trip a debug assertion) instead of silently
    /// wrapping around.
    #[must_use]
    pub fn scaled(&self, factor: u32) -> Self {
        if factor == 0 {
            return Self::new();
        }
        let counts = self
            .counts
            .iter()
            .map(|&(inst, count)| {
                let scaled = count.checked_mul(factor);
                debug_assert!(
                    scaled.is_some(),
                    "multiplicity overflow scaling {count} copies of {inst} by {factor}"
                );
                (inst, scaled.unwrap_or(u32::MAX))
            })
            .collect();
        Self { counts }
    }

    /// Multiplicity of an instruction in the kernel (0 if absent).
    pub fn multiplicity(&self, inst: InstId) -> u32 {
        match self.counts.binary_search_by_key(&inst, |&(i, _)| i) {
            Ok(pos) => self.counts[pos].1,
            Err(_) => 0,
        }
    }

    /// Number of *distinct* instructions.
    pub fn num_distinct(&self) -> usize {
        self.counts.len()
    }

    /// Total number of instructions executed per loop iteration, `|K|`.
    pub fn total_instructions(&self) -> u32 {
        self.counts.iter().map(|&(_, c)| c).sum()
    }

    /// True when the kernel contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// True when the kernel contains the given instruction.
    pub fn contains(&self, inst: InstId) -> bool {
        self.counts.binary_search_by_key(&inst, |&(i, _)| i).is_ok()
    }

    /// The `(instruction, multiplicity)` pairs as one contiguous slice,
    /// sorted by instruction id.  This is the zero-cost view hot loops
    /// (prediction microkernels, hashing, interning) should iterate.
    pub fn as_slice(&self) -> &[(InstId, u32)] {
        &self.counts
    }

    /// Iterates over `(instruction, multiplicity)` pairs in instruction order.
    pub fn iter(&self) -> impl Iterator<Item = (InstId, u32)> + '_ {
        self.counts.iter().copied()
    }

    /// Iterates over the distinct instructions of the kernel.
    pub fn instructions(&self) -> impl Iterator<Item = InstId> + '_ {
        self.counts.iter().map(|&(i, _)| i)
    }

    /// Renders the kernel with instruction names resolved through `resolve`.
    pub fn display_with<'a>(
        &'a self,
        resolve: impl Fn(InstId) -> String + 'a,
    ) -> impl fmt::Display + 'a {
        struct D<'a, F>(&'a Microkernel, F);
        impl<F: Fn(InstId) -> String> fmt::Display for D<'_, F> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                let mut first = true;
                for (inst, count) in self.0.iter() {
                    if !first {
                        write!(f, " ")?;
                    }
                    first = false;
                    if count == 1 {
                        write!(f, "{}", (self.1)(inst))?;
                    } else {
                        write!(f, "{}^{}", (self.1)(inst), count)?;
                    }
                }
                if first {
                    write!(f, "(empty)")?;
                }
                Ok(())
            }
        }
        D(self, resolve)
    }
}

impl fmt::Display for Microkernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display_with(|i| i.to_string()))
    }
}

impl FromIterator<(InstId, u32)> for Microkernel {
    fn from_iter<T: IntoIterator<Item = (InstId, u32)>>(iter: T) -> Self {
        Self::from_counts(iter)
    }
}

impl Extend<(InstId, u32)> for Microkernel {
    fn extend<T: IntoIterator<Item = (InstId, u32)>>(&mut self, iter: T) {
        for (inst, count) in iter {
            self.add(inst, count);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn i(n: u32) -> InstId {
        InstId(n)
    }

    #[test]
    fn single_and_pair_constructors() {
        let k = Microkernel::single(i(3));
        assert_eq!(k.total_instructions(), 1);
        assert_eq!(k.multiplicity(i(3)), 1);

        let p = Microkernel::pair(i(1), 2, i(2), 1);
        assert_eq!(p.total_instructions(), 3);
        assert_eq!(p.num_distinct(), 2);
        assert_eq!(p.multiplicity(i(1)), 2);
    }

    #[test]
    fn zero_counts_are_ignored() {
        let k = Microkernel::from_counts([(i(1), 0), (i(2), 5)]);
        assert!(!k.contains(i(1)));
        assert_eq!(k.multiplicity(i(2)), 5);
    }

    #[test]
    fn duplicates_accumulate() {
        let k = Microkernel::from_counts([(i(1), 2), (i(1), 3)]);
        assert_eq!(k.multiplicity(i(1)), 5);
    }

    #[test]
    fn multiset_equality_ignores_order() {
        let a = Microkernel::from_counts([(i(1), 2), (i(2), 1)]);
        let b = Microkernel::from_counts([(i(2), 1), (i(1), 2)]);
        assert_eq!(a, b);
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }

    #[test]
    fn merge_and_scale() {
        let mut a = Microkernel::pair(i(1), 1, i(2), 1);
        a.merge(&Microkernel::single(i(2)));
        assert_eq!(a.multiplicity(i(2)), 2);
        let s = a.scaled(3);
        assert_eq!(s.multiplicity(i(1)), 3);
        assert_eq!(s.multiplicity(i(2)), 6);
    }

    #[test]
    fn from_proportions_matches_paper_example() {
        // a = 0.06, b = 1 with 5% tolerance -> a^1 b^(~17) (paper says b^20
        // with slightly different rounding; the invariant is the ratio).
        let k = Microkernel::from_proportions([(i(1), 0.06), (i(2), 1.0)], 0.05, 200);
        assert!(k.multiplicity(i(1)) >= 1);
        let ratio = k.multiplicity(i(2)) as f64 / k.multiplicity(i(1)) as f64;
        assert!((ratio - 1.0 / 0.06).abs() / (1.0 / 0.06) < 0.1, "ratio = {ratio}");
    }

    #[test]
    fn from_proportions_equal_weights() {
        let k = Microkernel::from_proportions([(i(1), 2.0), (i(2), 2.0)], 0.05, 100);
        assert_eq!(k.multiplicity(i(1)), k.multiplicity(i(2)));
        assert!(k.multiplicity(i(1)) >= 1);
    }

    #[test]
    fn from_proportions_drops_zeros_and_handles_empty() {
        let k = Microkernel::from_proportions([(i(1), 0.0)], 0.05, 100);
        assert!(k.is_empty());
    }

    #[test]
    fn display_is_readable() {
        let k = Microkernel::pair(i(1), 2, i(2), 1);
        assert_eq!(k.to_string(), "I1^2 I2");
        assert_eq!(Microkernel::new().to_string(), "(empty)");
    }

    #[test]
    fn as_slice_is_sorted_by_instruction() {
        let k = Microkernel::from_counts([(i(9), 1), (i(2), 3), (i(9), 1), (i(5), 2)]);
        assert_eq!(k.as_slice(), &[(i(2), 3), (i(5), 2), (i(9), 2)]);
        assert_eq!(k.iter().collect::<Vec<_>>(), k.as_slice());
    }

    #[test]
    fn merge_joins_sorted_runs() {
        let mut a = Microkernel::from_counts([(i(1), 1), (i(3), 2), (i(7), 1)]);
        a.merge(&Microkernel::from_counts([(i(0), 5), (i(3), 1), (i(9), 4)]));
        assert_eq!(a.as_slice(), &[(i(0), 5), (i(1), 1), (i(3), 3), (i(7), 1), (i(9), 4)]);
        let mut empty = Microkernel::new();
        empty.merge(&a);
        assert_eq!(empty, a);
        a.merge(&Microkernel::new());
        assert_eq!(empty, a);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "multiplicity overflow"))]
    fn scaled_saturates_instead_of_wrapping() {
        let k = Microkernel::from_counts([(i(1), u32::MAX / 2 + 1)]);
        // Debug builds assert; release builds saturate rather than wrap to a
        // tiny (wrong) multiplicity.
        assert_eq!(k.scaled(4).multiplicity(i(1)), u32::MAX);
    }

    #[test]
    fn scaled_by_zero_is_empty() {
        let k = Microkernel::pair(i(1), 2, i(2), 1);
        assert!(k.scaled(0).is_empty());
    }

    #[test]
    fn collect_and_extend() {
        let k: Microkernel = vec![(i(1), 1), (i(2), 2)].into_iter().collect();
        assert_eq!(k.total_instructions(), 3);
        let mut k2 = k.clone();
        k2.extend([(i(3), 1)]);
        assert_eq!(k2.num_distinct(), 3);
    }
}
