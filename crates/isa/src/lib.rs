//! Instruction-set substrate for the Palmed reproduction.
//!
//! Palmed treats instructions as opaque identifiers: everything it learns
//! about them comes from measuring the IPC of *microkernels* — infinite loops
//! repeating a dependency-free multiset of instructions (Def. IV.1 of the
//! paper).  This crate provides:
//!
//! * [`inst`] — instruction descriptors: a symbolic name, the ISA
//!   *extension* it belongs to (base / SSE / AVX, which Palmed refuses to mix
//!   inside one benchmark), and the *execution class* that the machine model
//!   uses to decide which µOPs it decomposes into.
//! * [`kernel`] — the [`Microkernel`] multiset type and
//!   helpers to build the benchmark shapes the paper uses (`a`, `aabb`,
//!   `aMb`, `i i sat^L sat`, ...).
//! * [`inventory`] — an [`InstructionSet`]
//!   container plus generators for a synthetic, x86-flavoured instruction
//!   inventory that mirrors the statistical structure of the real ISA
//!   (thousands of mnemonics collapsing onto a handful of behaviours).
//! * [`intern`] — [`KernelSet`], an insert-only interner giving every
//!   distinct microkernel a dense [`KernelId`] with a cached 64-bit hash, so
//!   serving-layer dedup is index bookkeeping instead of repeated hashing.

pub mod inst;
pub mod intern;
pub mod inventory;
pub mod kernel;

pub use inst::{ExecClass, Extension, InstDesc, InstId};
pub use intern::{FxBuildHasher, FxLikeHasher, KernelId, KernelSet};
pub use inventory::{InstructionSet, InventoryConfig};
pub use kernel::Microkernel;
