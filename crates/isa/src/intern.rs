//! Kernel interning: give every distinct microkernel one small id.
//!
//! Basic-block streams are massively redundant — the same hot loop body shows
//! up thousands of times — and a serving pipeline wants to pay hashing and
//! equality once per *distinct* kernel, not once per occurrence.
//! [`KernelSet`] is an insert-only interner: [`KernelSet::intern`] maps a
//! [`Microkernel`] to a dense [`KernelId`] (first-occurrence order), caching
//! the kernel's 64-bit hash so later lookups and re-interning never walk the
//! kernel again unless the hashes collide.
//!
//! The hasher is [`FxLikeHasher`], a multiply-xor hasher in the FxHash
//! family: kernels hash as short sequences of small integers, for which a
//! DoS-resistant SipHash is pure overhead (measured in the serve layer:
//! SipHash cost comparable to an entire IPC prediction).  Collisions only
//! cost an extra equality check.

use crate::kernel::Microkernel;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};

/// A multiply-xor hasher in the FxHash family: one round per written word.
///
/// Hash quality beyond "mixes all words" buys nothing here — hash users in
/// this workspace (interners, dedup tables) resolve collisions by equality.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxLikeHasher(u64);

impl FxLikeHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn round(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl Hasher for FxLikeHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.round(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.round(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.round(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.round(n as u64);
    }
}

/// `BuildHasher` for [`FxLikeHasher`], usable with `HashMap`/`HashSet`.
pub type FxBuildHasher = BuildHasherDefault<FxLikeHasher>;

/// Identifier of a distinct microkernel inside a [`KernelSet`], dense in
/// first-occurrence order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct KernelId(pub u32);

impl KernelId {
    /// Raw index into the owning kernel set.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for KernelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "K{}", self.0)
    }
}

/// The collision scan of the interning scheme: ids land in the overflow
/// list only when their hash already belonged to a *different* kernel, so
/// the list is empty in practice and equality is the only check needed.
#[inline]
fn find_collision<K: std::borrow::Borrow<Microkernel>>(
    kernels: &[K],
    overflow: &[u32],
    kernel: &Microkernel,
) -> Option<u32> {
    overflow.iter().copied().find(|&i| kernels[i as usize].borrow() == kernel)
}

/// An insert-only interner of microkernels with cached 64-bit hashes.
///
/// # Sharing contract
///
/// The set is **insert-only**: kernels are never removed or reordered, so a
/// [`KernelId`], once handed out, resolves to the same kernel for the
/// lifetime of the set — and of every clone taken after the id was issued.
/// That is what makes an `Arc<KernelSet>` safe to share across consumers
/// (the serving layer's corpora and prepared batches do exactly this):
/// readers hold a snapshot whose ids are stable, and a writer that needs to
/// keep interning while the set is shared can clone-on-write knowing the
/// copy agrees with the original on every id both have seen.
#[derive(Debug, Clone, Default)]
pub struct KernelSet {
    /// The distinct kernels, indexed by [`KernelId`].
    kernels: Vec<Microkernel>,
    /// Cached [`KernelSet::hash_kernel`] of every kernel, same indexing.
    hashes: Vec<u64>,
    /// Hash → first id with that hash.  One flat slot instead of a bucket
    /// `Vec` per entry: buckets would mean one heap allocation per distinct
    /// kernel (and per clone of the set); true 64-bit collisions go to the
    /// shared `overflow` list instead.  Keys are already well-mixed hashes,
    /// so the map itself uses the cheap one-round hasher too.
    table: HashMap<u64, u32, FxBuildHasher>,
    /// Ids whose hash collided with an earlier, different kernel; scanned
    /// linearly (empty in practice).
    overflow: Vec<u32>,
}

impl KernelSet {
    /// An empty set.
    pub fn new() -> Self {
        KernelSet::default()
    }

    /// Number of distinct kernels interned.
    pub fn len(&self) -> usize {
        self.kernels.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.kernels.is_empty()
    }

    /// The 64-bit Fx hash of a kernel — the value cached per entry.
    pub fn hash_kernel(kernel: &Microkernel) -> u64 {
        let mut hasher = FxLikeHasher::default();
        kernel.hash(&mut hasher);
        hasher.finish()
    }

    /// Looks a kernel up without inserting it.
    pub fn lookup(&self, kernel: &Microkernel) -> Option<KernelId> {
        let hash = Self::hash_kernel(kernel);
        let primary = *self.table.get(&hash)?;
        if self.kernels[primary as usize] == *kernel {
            return Some(KernelId(primary));
        }
        find_collision(&self.kernels, &self.overflow, kernel).map(KernelId)
    }

    /// The shared interning core: finds the kernel by its hash, or registers
    /// the next fresh id in the index (primary slot or overflow list) and
    /// returns `Err` — the caller then pushes the kernel itself, which is
    /// what lets [`intern`](Self::intern) clone only on a miss while
    /// [`intern_owned`](Self::intern_owned) moves.
    fn locate_or_reserve(&mut self, hash: u64, kernel: &Microkernel) -> Result<u32, u32> {
        let id = self.kernels.len() as u32;
        match self.table.entry(hash) {
            // A vacant hash slot proves the kernel is new (equal kernels
            // hash equally).
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(id);
                Err(id)
            }
            std::collections::hash_map::Entry::Occupied(e) => {
                let primary = *e.get();
                if self.kernels[primary as usize] == *kernel {
                    return Ok(primary);
                }
                if let Some(i) = find_collision(&self.kernels, &self.overflow, kernel) {
                    return Ok(i);
                }
                self.overflow.push(id);
                Err(id)
            }
        }
    }

    /// Interns a kernel: returns the existing id when an equal kernel is
    /// already present, otherwise clones it in and returns the fresh id.
    pub fn intern(&mut self, kernel: &Microkernel) -> KernelId {
        let hash = Self::hash_kernel(kernel);
        match self.locate_or_reserve(hash, kernel) {
            Ok(existing) => KernelId(existing),
            Err(fresh) => {
                self.kernels.push(kernel.clone());
                self.hashes.push(hash);
                KernelId(fresh)
            }
        }
    }

    /// Interns an owned kernel without cloning when it is new.
    pub fn intern_owned(&mut self, kernel: Microkernel) -> KernelId {
        let hash = Self::hash_kernel(&kernel);
        match self.locate_or_reserve(hash, &kernel) {
            Ok(existing) => KernelId(existing),
            Err(fresh) => {
                self.kernels.push(kernel);
                self.hashes.push(hash);
                KernelId(fresh)
            }
        }
    }

    /// Dedupes a sequence of kernels *by reference*, without building a set:
    /// returns the distinct kernels in first-occurrence order plus, for every
    /// input position, the index of its kernel in that list.  Same hashing
    /// and collision handling as [`KernelSet::intern`], minus the clones —
    /// the one-shot batch path.
    pub fn dedup_refs<'k>(
        kernels: impl IntoIterator<Item = &'k Microkernel>,
    ) -> (Vec<&'k Microkernel>, Vec<u32>) {
        let mut table: HashMap<u64, u32, FxBuildHasher> = HashMap::default();
        let mut overflow: Vec<u32> = Vec::new();
        let mut distinct: Vec<&'k Microkernel> = Vec::new();
        let mut slots: Vec<u32> = Vec::new();
        for kernel in kernels {
            let hash = Self::hash_kernel(kernel);
            let id = distinct.len() as u32;
            let index = match table.entry(hash) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(id);
                    distinct.push(kernel);
                    id
                }
                std::collections::hash_map::Entry::Occupied(e) => {
                    let primary = *e.get();
                    if distinct[primary as usize] == kernel {
                        primary
                    } else if let Some(i) = find_collision(&distinct, &overflow, kernel) {
                        i
                    } else {
                        overflow.push(id);
                        distinct.push(kernel);
                        id
                    }
                }
            };
            slots.push(index);
        }
        (distinct, slots)
    }

    /// The kernel behind an id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this set.
    pub fn get(&self, id: KernelId) -> &Microkernel {
        &self.kernels[id.index()]
    }

    /// The cached hash of an interned kernel.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this set.
    pub fn hash_of(&self, id: KernelId) -> u64 {
        self.hashes[id.index()]
    }

    /// The distinct kernels as a slice, indexed by [`KernelId::index`] —
    /// first-occurrence order.
    pub fn as_slice(&self) -> &[Microkernel] {
        &self.kernels
    }

    /// Iterates over `(id, kernel)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (KernelId, &Microkernel)> {
        self.kernels.iter().enumerate().map(|(i, k)| (KernelId(i as u32), k))
    }
}

/// Two sets are equal when they interned the same kernels in the same order
/// (the table and hash cache are derived state).
impl PartialEq for KernelSet {
    fn eq(&self, other: &Self) -> bool {
        self.kernels == other.kernels
    }
}

impl Eq for KernelSet {}

impl<'k> FromIterator<&'k Microkernel> for KernelSet {
    fn from_iter<T: IntoIterator<Item = &'k Microkernel>>(iter: T) -> Self {
        let mut set = KernelSet::new();
        for kernel in iter {
            set.intern(kernel);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::InstId;

    fn k(pairs: &[(u32, u32)]) -> Microkernel {
        Microkernel::from_counts(pairs.iter().map(|&(i, c)| (InstId(i), c)))
    }

    #[test]
    fn interning_dedupes_and_preserves_first_occurrence_order() {
        let mut set = KernelSet::new();
        let a = set.intern(&k(&[(0, 1), (1, 2)]));
        let b = set.intern(&k(&[(2, 1)]));
        let a_again = set.intern(&k(&[(1, 2), (0, 1)])); // same multiset
        assert_eq!(a, KernelId(0));
        assert_eq!(b, KernelId(1));
        assert_eq!(a_again, a);
        assert_eq!(set.len(), 2);
        assert_eq!(set.get(a), &k(&[(0, 1), (1, 2)]));
        assert_eq!(set.as_slice().len(), 2);
        assert_eq!(set.iter().map(|(id, _)| id).collect::<Vec<_>>(), [KernelId(0), KernelId(1)]);
    }

    #[test]
    fn cached_hashes_match_fresh_hashes() {
        let mut set = KernelSet::new();
        for n in 0..20u32 {
            let kernel = k(&[(n % 5, 1 + n), (n, 2)]);
            let id = set.intern(&kernel);
            assert_eq!(set.hash_of(id), KernelSet::hash_kernel(&kernel));
        }
    }

    #[test]
    fn lookup_does_not_insert() {
        let mut set = KernelSet::new();
        assert_eq!(set.lookup(&k(&[(0, 1)])), None);
        let id = set.intern_owned(k(&[(0, 1)]));
        assert_eq!(set.lookup(&k(&[(0, 1)])), Some(id));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn equality_ignores_derived_state() {
        let mut a = KernelSet::new();
        a.intern(&k(&[(0, 1)]));
        a.lookup(&k(&[(1, 1)]));
        let b: KernelSet = [k(&[(0, 1)])].iter().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn fx_hasher_mixes_word_writes() {
        use std::hash::BuildHasher;
        let build = FxBuildHasher::default();
        let a = k(&[(0, 1), (1, 2)]);
        let b = k(&[(0, 2), (1, 1)]);
        // Same multiset built in a different order must hash identically.
        let c = k(&[(1, 1), (0, 2)]);
        assert_eq!(build.hash_one(&a), build.hash_one(&a));
        assert_ne!(build.hash_one(&a), build.hash_one(&b));
        assert_eq!(build.hash_one(&b), build.hash_one(&c));
        // The byte-slice path is exercised too (e.g. str keys elsewhere).
        assert_ne!(build.hash_one("some string"), build.hash_one("some strinh"));
    }
}
