//! Deterministic data parallelism for embarrassingly parallel loops.
//!
//! The measurement campaigns (per-benchmark IPC loops in `palmed-eval`, the
//! quadratic pair campaign in `palmed-core`) are pure fan-out work.  This
//! crate provides a `rayon`-shaped `par_map` built on `std::thread::scope` —
//! the build environment has no network access, so the real `rayon` cannot be
//! vendored; the API is kept drop-in so swapping it in later is a one-line
//! dependency change.
//!
//! Guarantees:
//!
//! * results are returned **in input order**, regardless of scheduling;
//! * the closure runs exactly once per item;
//! * with one available core (or tiny inputs) everything runs inline, so
//!   behaviour is identical on constrained machines.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads used for a workload of `len` items.
fn thread_count(len: usize) -> usize {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    cores.min(len)
}

/// Maps `f` over `items` in parallel, returning results in input order.
///
/// Items are handed out dynamically (work stealing via a shared atomic
/// cursor) so uneven per-item cost does not serialise the loop.
pub fn par_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    par_map_indexed(items, |_, item| f(item))
}

/// Like [`par_map`], but the closure also receives the item index.
pub fn par_map_indexed<T: Sync, R: Send>(
    items: &[T],
    f: impl Fn(usize, &T) -> R + Sync,
) -> Vec<R> {
    let threads = thread_count(items.len());
    if threads <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, item)| f(i, item)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    {
        // Hand each worker a disjoint set of result slots via a raw pointer;
        // the atomic cursor guarantees no index is claimed twice.
        struct SlotWriter<R>(*mut Option<R>);
        unsafe impl<R: Send> Send for SlotWriter<R> {}
        unsafe impl<R: Send> Sync for SlotWriter<R> {}
        let writer = SlotWriter(slots.as_mut_ptr());

        std::thread::scope(|scope| {
            for _ in 0..threads {
                let cursor = &cursor;
                let f = &f;
                let writer = &writer;
                scope.spawn(move || loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let value = f(i, &items[i]);
                    // SAFETY: `i` is unique to this worker (fetch_add) and in
                    // bounds, so no two threads write the same slot and the
                    // parent only reads after the scope joins.
                    unsafe { writer.0.add(i).write(Some(value)) };
                });
            }
        });
    }
    slots.into_iter().map(|r| r.expect("every index visited")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn indexed_variant_sees_correct_indices() {
        let items = vec!["a"; 257];
        let out = par_map_indexed(&items, |i, _| i);
        assert_eq!(out, (0..257).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[7u8], |&x| x + 1), vec![8]);
    }

    #[test]
    fn uneven_workloads_complete() {
        let items: Vec<u64> = (0..64).collect();
        let out = par_map(&items, |&x| {
            // Skewed cost: later items spin longer.
            let mut acc = 0u64;
            for i in 0..(x * 1000) {
                acc = acc.wrapping_add(i);
            }
            std::hint::black_box(acc);
            x
        });
        assert_eq!(out, items);
    }
}
