//! Register pools used by the benchmark generator.
//!
//! Dependency-freedom is the one property the paper's microbenchmarks must
//! have (Sec. III-A): the measured IPC must reflect resource contention only,
//! never a latency chain.  The generator therefore writes every instruction
//! instance to a *different* register, cycling through a pool large enough
//! that a destination is not reused before the previous write has long
//! retired.

use std::fmt;

/// The architectural register file a register belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RegisterClass {
    /// 64-bit general-purpose registers.
    Gpr64,
    /// 32-bit views of the general-purpose registers.
    Gpr32,
    /// 128-bit SSE registers.
    Xmm,
    /// 256-bit AVX registers.
    Ymm,
}

impl RegisterClass {
    /// Names of the registers of this class that the generator may allocate.
    ///
    /// A few registers are deliberately excluded: `%rsp` / `%rbp` (stack),
    /// `%rdi` (scratch-buffer base pointer), `%rcx` (loop counter), and their
    /// 32-bit views, so generated code never clobbers the loop structure.
    pub fn names(self) -> &'static [&'static str] {
        match self {
            RegisterClass::Gpr64 => &[
                "%rax", "%rbx", "%rdx", "%rsi", "%r8", "%r9", "%r10", "%r11", "%r12", "%r13",
                "%r14", "%r15",
            ],
            RegisterClass::Gpr32 => &[
                "%eax", "%ebx", "%edx", "%esi", "%r8d", "%r9d", "%r10d", "%r11d", "%r12d",
                "%r13d", "%r14d", "%r15d",
            ],
            RegisterClass::Xmm => &[
                "%xmm0", "%xmm1", "%xmm2", "%xmm3", "%xmm4", "%xmm5", "%xmm6", "%xmm7", "%xmm8",
                "%xmm9", "%xmm10", "%xmm11", "%xmm12", "%xmm13", "%xmm14", "%xmm15",
            ],
            RegisterClass::Ymm => &[
                "%ymm0", "%ymm1", "%ymm2", "%ymm3", "%ymm4", "%ymm5", "%ymm6", "%ymm7", "%ymm8",
                "%ymm9", "%ymm10", "%ymm11", "%ymm12", "%ymm13", "%ymm14", "%ymm15",
            ],
        }
    }

    /// Number of allocatable registers in the class.
    pub fn len(self) -> usize {
        self.names().len()
    }

    /// Always false: every class has at least one register.
    pub fn is_empty(self) -> bool {
        self.names().is_empty()
    }
}

impl fmt::Display for RegisterClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            RegisterClass::Gpr64 => "gpr64",
            RegisterClass::Gpr32 => "gpr32",
            RegisterClass::Xmm => "xmm",
            RegisterClass::Ymm => "ymm",
        };
        f.write_str(name)
    }
}

/// Round-robin register allocator over one [`RegisterClass`].
///
/// Successive calls to [`RegisterPool::next`] return different registers
/// until the pool wraps around; [`RegisterPool::next_pair`] returns two
/// *distinct* registers for two-operand instructions so that the source and
/// the destination never alias (which would create a dependency on the
/// previous writer of the destination).
#[derive(Debug, Clone)]
pub struct RegisterPool {
    class: RegisterClass,
    cursor: usize,
}

impl RegisterPool {
    /// Creates a pool over the given class, starting at its first register.
    pub fn new(class: RegisterClass) -> Self {
        RegisterPool { class, cursor: 0 }
    }

    /// The register class this pool allocates from.
    pub fn class(&self) -> RegisterClass {
        self.class
    }

    /// Returns the next register in round-robin order.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> &'static str {
        let names = self.class.names();
        let name = names[self.cursor % names.len()];
        self.cursor += 1;
        name
    }

    /// Returns two distinct registers (source, destination).
    pub fn next_pair(&mut self) -> (&'static str, &'static str) {
        let a = self.next();
        let mut b = self.next();
        if a == b {
            // Only possible for a pool of size 1, which no class has, but the
            // fallback keeps the invariant explicit.
            b = self.next();
        }
        (a, b)
    }

    /// Number of registers handed out so far.
    pub fn allocated(&self) -> usize {
        self.cursor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn pools_cycle_through_all_registers_before_repeating() {
        for class in [
            RegisterClass::Gpr64,
            RegisterClass::Gpr32,
            RegisterClass::Xmm,
            RegisterClass::Ymm,
        ] {
            let mut pool = RegisterPool::new(class);
            let n = class.len();
            let first_round: BTreeSet<&str> = (0..n).map(|_| pool.next()).collect();
            assert_eq!(first_round.len(), n, "{class} pool repeated a register early");
            assert_eq!(pool.next(), class.names()[0], "{class} pool did not wrap around");
        }
    }

    #[test]
    fn next_pair_never_aliases() {
        let mut pool = RegisterPool::new(RegisterClass::Xmm);
        for _ in 0..64 {
            let (a, b) = pool.next_pair();
            assert_ne!(a, b);
        }
    }

    #[test]
    fn reserved_registers_are_not_allocatable() {
        for reserved in ["%rsp", "%rbp", "%rdi", "%rcx", "%esp", "%ebp", "%edi", "%ecx"] {
            for class in [RegisterClass::Gpr64, RegisterClass::Gpr32] {
                assert!(
                    !class.names().contains(&reserved),
                    "{reserved} must stay reserved in {class}"
                );
            }
        }
    }

    #[test]
    fn classes_report_consistent_sizes() {
        assert_eq!(RegisterClass::Gpr64.len(), RegisterClass::Gpr32.len());
        assert_eq!(RegisterClass::Xmm.len(), 16);
        assert_eq!(RegisterClass::Ymm.len(), 16);
        assert!(!RegisterClass::Xmm.is_empty());
    }
}
