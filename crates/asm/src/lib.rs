//! Assembly rendering of Palmed microbenchmarks.
//!
//! The original Palmed drives real hardware: every microkernel it wants to
//! measure is turned into an assembly loop (dependency-free, L1-resident,
//! unrolled enough to hide the loop overhead), assembled, and timed with the
//! cycle counter.  This crate is that benchmark-generator back-end: it
//! renders a [`Microkernel`](palmed_isa::Microkernel) into an x86-64 (AT&T syntax) assembly file that
//! follows the same construction rules as the paper's generator:
//!
//! * **no dependencies** — destination registers rotate through a pool so no
//!   instance reads a register written by a nearby instance;
//! * **L1-resident memory accesses** — loads and stores target a small
//!   scratch buffer, with the address rotated across a handful of cache
//!   lines;
//! * **unrolling** — the kernel body is repeated [`EmitterConfig::unroll`]
//!   times per loop iteration so the loop branch is negligible;
//! * **no extension mixing surprises** — the caller controls the kernel, the
//!   emitter simply refuses nothing; the measurement-side rule of not mixing
//!   SSE and AVX lives in the campaign configuration.
//!
//! The simulated back-ends of `palmed-machine` do not consume this output —
//! they work on the [`Microkernel`](palmed_isa::Microkernel) directly — but rendering every kernel of
//! a campaign is how the reproduction would be hooked to real silicon, and
//! the textual output doubles as a human-readable description of each
//! benchmark.
//!
//! # Example
//!
//! ```
//! use palmed_asm::{AsmEmitter, EmitterConfig};
//! use palmed_isa::{InstructionSet, Microkernel};
//!
//! let insts = InstructionSet::paper_example();
//! let addss = insts.find("ADDSS").unwrap();
//! let bsr = insts.find("BSR").unwrap();
//! let kernel = Microkernel::pair(addss, 2, bsr, 1);
//!
//! let emitter = AsmEmitter::new(EmitterConfig::default());
//! let asm = emitter.render(&insts, &kernel).unwrap();
//! assert!(asm.contains("addss"));
//! assert!(asm.contains(".loop:"));
//! ```

pub mod emit;
pub mod operands;
pub mod regs;

pub use emit::{AsmEmitter, EmitError, EmitterConfig};
pub use operands::{operand_kind, OperandKind};
pub use regs::{RegisterClass, RegisterPool};
