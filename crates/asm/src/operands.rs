//! Operand shapes per execution class.
//!
//! The synthetic inventory names instructions after real x86 mnemonics, but
//! what the benchmark generator needs is only the *shape* of the operands:
//! which register file, whether a memory operand is read or written, whether
//! the instruction is a branch whose target must be the next instruction
//! (so that the benchmark's control flow stays a straight line).  The shape
//! is fully determined by the [`ExecClass`] of the instruction.

use crate::regs::RegisterClass;
use palmed_isa::ExecClass;

/// How the operands of an instruction must be materialised.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperandKind {
    /// `op %src, %dst` over a register class (ALU, FP, vector arithmetic).
    RegReg(RegisterClass),
    /// `op %src1, %src2 -> %dst` rendered as the two-operand AT&T form with a
    /// distinct destination (FMA-style three-operand AVX instructions).
    RegRegReg(RegisterClass),
    /// `op offset(%base), %dst`: a load from the scratch buffer.
    Load(RegisterClass),
    /// `op %src, offset(%base)`: a store to the scratch buffer.
    Store(RegisterClass),
    /// `lea offset(%base, %index, scale), %dst`.
    AddressGen,
    /// A conditional branch that must fall through (its target is the next
    /// label, taken or not, the body stays straight-line).
    CondBranch,
    /// An unconditional jump to the immediately following label.
    Jump,
}

/// Operand shape of an execution class.
pub fn operand_kind(class: ExecClass) -> OperandKind {
    match class {
        ExecClass::IntAlu | ExecClass::IntAluRestricted | ExecClass::IntMul | ExecClass::IntDiv => {
            OperandKind::RegReg(RegisterClass::Gpr64)
        }
        ExecClass::Lea => OperandKind::AddressGen,
        ExecClass::Branch => OperandKind::CondBranch,
        ExecClass::Jump => OperandKind::Jump,
        ExecClass::Load => OperandKind::Load(RegisterClass::Gpr64),
        ExecClass::Store => OperandKind::Store(RegisterClass::Gpr64),
        ExecClass::FpAddSse
        | ExecClass::FpMulSse
        | ExecClass::FpDivSse
        | ExecClass::VecAluSse
        | ExecClass::VecShuffleSse
        | ExecClass::VecCvtSse => OperandKind::RegReg(RegisterClass::Xmm),
        ExecClass::FpAddAvx | ExecClass::VecAluAvx | ExecClass::VecShuffleAvx => {
            OperandKind::RegRegReg(RegisterClass::Ymm)
        }
        ExecClass::FpMulAvx | ExecClass::FpDivAvx => OperandKind::RegRegReg(RegisterClass::Ymm),
        ExecClass::VecStore => OperandKind::Store(RegisterClass::Xmm),
        ExecClass::VecLoad => OperandKind::Load(RegisterClass::Xmm),
    }
}

impl OperandKind {
    /// The register class the operands live in, when there is one.
    pub fn register_class(self) -> Option<RegisterClass> {
        match self {
            OperandKind::RegReg(c)
            | OperandKind::RegRegReg(c)
            | OperandKind::Load(c)
            | OperandKind::Store(c) => Some(c),
            OperandKind::AddressGen => Some(RegisterClass::Gpr64),
            OperandKind::CondBranch | OperandKind::Jump => None,
        }
    }

    /// Whether the instruction touches the scratch memory buffer.
    pub fn touches_memory(self) -> bool {
        matches!(self, OperandKind::Load(_) | OperandKind::Store(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_class_has_an_operand_shape() {
        for class in ExecClass::ALL {
            // Must not panic, and memory classes must be flagged as such.
            let kind = operand_kind(class);
            match class {
                ExecClass::Load | ExecClass::Store | ExecClass::VecLoad | ExecClass::VecStore => {
                    assert!(kind.touches_memory(), "{class:?} should touch memory")
                }
                _ => assert!(!kind.touches_memory(), "{class:?} should not touch memory"),
            }
        }
    }

    #[test]
    fn vector_classes_use_vector_registers() {
        assert_eq!(
            operand_kind(ExecClass::FpAddSse).register_class(),
            Some(RegisterClass::Xmm)
        );
        assert_eq!(
            operand_kind(ExecClass::FpAddAvx).register_class(),
            Some(RegisterClass::Ymm)
        );
        assert_eq!(
            operand_kind(ExecClass::IntAlu).register_class(),
            Some(RegisterClass::Gpr64)
        );
    }

    #[test]
    fn control_flow_classes_have_no_register_class() {
        assert_eq!(operand_kind(ExecClass::Branch).register_class(), None);
        assert_eq!(operand_kind(ExecClass::Jump).register_class(), None);
    }
}
