//! Hardware substrate: the simulated CPU that Palmed characterises.
//!
//! The original Palmed measures real processors (an Intel Skylake-SP and an
//! AMD Zen1) with cycle counters.  This reproduction replaces the silicon
//! with a **port-model simulator**: a ground-truth *disjunctive* tripartite
//! port mapping (instructions → µOPs → execution ports) plus the non-port
//! resources the paper names (front-end width, non-pipelined dividers,
//! reorder-buffer capacity), behind the same observable — the steady-state
//! IPC of a dependency-free microkernel.
//!
//! * [`port`] — ports, port sets and µOP descriptors.
//! * [`disjunctive`] — machine descriptions and the resolved
//!   [`DisjunctiveMapping`] for an instruction set.
//! * [`throughput`] — exact optimal steady-state throughput of a microkernel
//!   on a disjunctive mapping (subset/Hall formula, cross-checked by an LP).
//! * [`cycle_sim`] — a cycle-level greedy issue simulator with a finite
//!   scheduler window, used as the "really executed" alternative back-end.
//! * [`noise`] — measurement perturbation so that inference sees realistic,
//!   not mathematically exact, IPC values.
//! * [`measure`] — the [`Measurer`] trait: the *only*
//!   interface Palmed uses to talk to a machine, mirroring the paper's
//!   "cycle measurements only" constraint; plus caching and counting
//!   wrappers.
//! * [`presets`] — ready-made machines: a Skylake-SP-like core, a Zen1-like
//!   core with split integer/floating-point pipelines, the 3-port
//!   pedagogical machine of the paper's Sec. III, and small test machines.

pub mod cycle_sim;
pub mod disjunctive;
pub mod measure;
pub mod noise;
pub mod port;
pub mod presets;
pub mod throughput;

pub use disjunctive::{DisjunctiveMapping, MachineDescription};
pub use cycle_sim::SimulationConfig;
pub use measure::{
    AnalyticMeasurer, BackendKind, BackendMeasurer, CountingMeasurer, Measurer, MemoizingMeasurer,
    SimulationMeasurer,
};
pub use noise::MeasurementNoise;
pub use port::{MicroOp, PortId, PortSet};
pub use throughput::{ipc, optimal_execution_time};
