//! The measurement interface Palmed talks to.
//!
//! The whole point of the paper is that the inference pipeline consumes
//! *only* end-to-end cycle measurements of microkernels — no per-port
//! hardware counters.  The [`Measurer`] trait is that seam: Palmed, the
//! baselines and the evaluation harness all receive a `&dyn Measurer` (or a
//! generic `M: Measurer`) and never see the ground-truth port mapping.
//!
//! Two back-ends are provided: [`AnalyticMeasurer`] (optimal-scheduler bound,
//! optionally perturbed by noise) and [`SimulationMeasurer`] (cycle-level
//! greedy simulation).  [`MemoizingMeasurer`] caches results — Palmed
//! re-measures the same kernels across phases — and [`CountingMeasurer`]
//! tracks how many *distinct* benchmarks were run, which is the
//! "Gen. microbenchmarks" column of Table II.

use crate::cycle_sim::{simulate_ipc, SimulationConfig};
use crate::disjunctive::DisjunctiveMapping;
use crate::noise::MeasurementNoise;
use crate::throughput;
use palmed_isa::{InstructionSet, Microkernel};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// A device able to report the steady-state IPC of a microkernel.
///
/// Implementations must be deterministic: measuring the same kernel twice
/// returns the same value (the paper relies on reproducible measurements and
/// rounds away residual jitter).
pub trait Measurer {
    /// Steady-state instructions-per-cycle of the kernel.
    fn ipc(&self, kernel: &Microkernel) -> f64;

    /// The instruction set this measurer can benchmark.
    fn instructions(&self) -> &InstructionSet;

    /// Number of measurements performed so far (distinct benchmark runs).
    fn measurement_count(&self) -> usize {
        0
    }
}

impl<M: Measurer + ?Sized> Measurer for &M {
    fn ipc(&self, kernel: &Microkernel) -> f64 {
        (**self).ipc(kernel)
    }
    fn instructions(&self) -> &InstructionSet {
        (**self).instructions()
    }
    fn measurement_count(&self) -> usize {
        (**self).measurement_count()
    }
}

/// Measurer backed by the analytic optimal-scheduler bound.
#[derive(Debug, Clone)]
pub struct AnalyticMeasurer {
    mapping: Arc<DisjunctiveMapping>,
    noise: MeasurementNoise,
}

impl AnalyticMeasurer {
    /// Creates an exact analytic measurer.
    pub fn new(mapping: Arc<DisjunctiveMapping>) -> Self {
        AnalyticMeasurer { mapping, noise: MeasurementNoise::none() }
    }

    /// Creates an analytic measurer with the given noise model.
    pub fn with_noise(mapping: Arc<DisjunctiveMapping>, noise: MeasurementNoise) -> Self {
        AnalyticMeasurer { mapping, noise }
    }

    /// The underlying ground-truth mapping (for oracle baselines only).
    pub fn mapping(&self) -> &DisjunctiveMapping {
        &self.mapping
    }
}

impl Measurer for AnalyticMeasurer {
    fn ipc(&self, kernel: &Microkernel) -> f64 {
        let exact = throughput::ipc(&self.mapping, kernel);
        if self.noise.is_exact() {
            exact
        } else {
            self.noise.perturb(exact, MeasurementNoise::fingerprint(kernel))
        }
    }

    fn instructions(&self) -> &InstructionSet {
        self.mapping.instructions()
    }
}

/// Measurer backed by the cycle-level greedy simulator.
#[derive(Debug, Clone)]
pub struct SimulationMeasurer {
    mapping: Arc<DisjunctiveMapping>,
    config: SimulationConfig,
    noise: MeasurementNoise,
}

impl SimulationMeasurer {
    /// Creates a simulation-backed measurer with default settings.
    pub fn new(mapping: Arc<DisjunctiveMapping>) -> Self {
        SimulationMeasurer {
            mapping,
            config: SimulationConfig::default(),
            noise: MeasurementNoise::none(),
        }
    }

    /// Overrides the simulation window.
    #[must_use]
    pub fn with_config(mut self, config: SimulationConfig) -> Self {
        self.config = config;
        self
    }

    /// Adds measurement noise.
    #[must_use]
    pub fn with_noise(mut self, noise: MeasurementNoise) -> Self {
        self.noise = noise;
        self
    }
}

impl Measurer for SimulationMeasurer {
    fn ipc(&self, kernel: &Microkernel) -> f64 {
        let exact = simulate_ipc(&self.mapping, kernel, &self.config).ipc;
        if self.noise.is_exact() {
            exact
        } else {
            self.noise.perturb(exact, MeasurementNoise::fingerprint(kernel))
        }
    }

    fn instructions(&self) -> &InstructionSet {
        self.mapping.instructions()
    }
}

/// Selects which measurement back-end a harness (evaluation campaign,
/// example, bench) should construct.
///
/// The analytic bound is exact and fast; the simulation is the "native
/// hardware" stand-in of the reproduction: greedy dispatch, finite scheduler
/// window, non-pipelined units and front-end width all leave their trace in
/// the measured IPC, exactly the effects the port-only baselines ignore.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BackendKind {
    /// Optimal-scheduler analytic bound ([`AnalyticMeasurer`]).
    Analytic,
    /// Cycle-level greedy simulation ([`SimulationMeasurer`]) with the given
    /// window configuration.
    Simulation(SimulationConfig),
}

impl Default for BackendKind {
    fn default() -> Self {
        BackendKind::Simulation(SimulationConfig::default())
    }
}

/// A measurer built from a [`BackendKind`]: either back-end behind one
/// concrete type, so harnesses can stay generic-free.
#[derive(Debug, Clone)]
pub enum BackendMeasurer {
    /// Analytic optimal-scheduler bound.
    Analytic(AnalyticMeasurer),
    /// Cycle-level greedy simulation.
    Simulation(SimulationMeasurer),
}

impl BackendMeasurer {
    /// Builds the measurer selected by `kind` for the given ground-truth
    /// mapping and noise model.
    pub fn new(kind: BackendKind, mapping: Arc<DisjunctiveMapping>, noise: MeasurementNoise) -> Self {
        match kind {
            BackendKind::Analytic => {
                BackendMeasurer::Analytic(AnalyticMeasurer::with_noise(mapping, noise))
            }
            BackendKind::Simulation(config) => BackendMeasurer::Simulation(
                SimulationMeasurer::new(mapping).with_config(config).with_noise(noise),
            ),
        }
    }
}

impl Measurer for BackendMeasurer {
    fn ipc(&self, kernel: &Microkernel) -> f64 {
        match self {
            BackendMeasurer::Analytic(m) => m.ipc(kernel),
            BackendMeasurer::Simulation(m) => m.ipc(kernel),
        }
    }

    fn instructions(&self) -> &InstructionSet {
        match self {
            BackendMeasurer::Analytic(m) => m.instructions(),
            BackendMeasurer::Simulation(m) => m.instructions(),
        }
    }
}

/// Caches measurements of an inner measurer.
///
/// Palmed measures the same microkernels repeatedly across its phases
/// (quadratic benchmarks feed selection, LP1, LP2, ...); caching keeps the
/// reproduction fast while preserving the benchmark count semantics: the
/// measurement count only grows for *distinct* kernels, which matches the
/// paper's "generated microbenchmarks" statistic.
///
/// The cache is behind a `Mutex` so the wrapper stays [`Sync`] and can be
/// shared by the parallel measurement loops (measurers are deterministic, so
/// a racing duplicate measurement of the same kernel is harmless).
#[derive(Debug)]
pub struct MemoizingMeasurer<M> {
    inner: M,
    cache: Mutex<HashMap<Microkernel, f64>>,
}

impl<M: Measurer> MemoizingMeasurer<M> {
    /// Wraps a measurer with a cache.
    pub fn new(inner: M) -> Self {
        MemoizingMeasurer { inner, cache: Mutex::new(HashMap::new()) }
    }

    /// Number of distinct kernels measured.
    pub fn distinct_kernels(&self) -> usize {
        self.cache.lock().unwrap().len()
    }

    /// Consumes the wrapper and returns the inner measurer.
    pub fn into_inner(self) -> M {
        self.inner
    }
}

impl<M: Measurer> Measurer for MemoizingMeasurer<M> {
    fn ipc(&self, kernel: &Microkernel) -> f64 {
        if let Some(&v) = self.cache.lock().unwrap().get(kernel) {
            return v;
        }
        let v = self.inner.ipc(kernel);
        self.cache.lock().unwrap().insert(kernel.clone(), v);
        v
    }

    fn instructions(&self) -> &InstructionSet {
        self.inner.instructions()
    }

    fn measurement_count(&self) -> usize {
        self.distinct_kernels()
    }
}

/// Counts every call to [`Measurer::ipc`], including repeats.
#[derive(Debug)]
pub struct CountingMeasurer<M> {
    inner: M,
    calls: Mutex<usize>,
}

impl<M: Measurer> CountingMeasurer<M> {
    /// Wraps a measurer with a call counter.
    pub fn new(inner: M) -> Self {
        CountingMeasurer { inner, calls: Mutex::new(0) }
    }

    /// Total number of `ipc` calls made through the wrapper.
    pub fn calls(&self) -> usize {
        *self.calls.lock().unwrap()
    }

    /// Consumes the wrapper and returns the inner measurer.
    pub fn into_inner(self) -> M {
        self.inner
    }
}

impl<M: Measurer> Measurer for CountingMeasurer<M> {
    fn ipc(&self, kernel: &Microkernel) -> f64 {
        *self.calls.lock().unwrap() += 1;
        self.inner.ipc(kernel)
    }

    fn instructions(&self) -> &InstructionSet {
        self.inner.instructions()
    }

    fn measurement_count(&self) -> usize {
        self.calls()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn analytic_and_simulation_agree_on_simple_kernels() {
        let machine = presets::paper_ports016();
        let map = Arc::new(machine.mapping());
        let insts = map.instructions_arc();
        let analytic = AnalyticMeasurer::new(Arc::clone(&map));
        let simulated = SimulationMeasurer::new(Arc::clone(&map));
        let addss = insts.find("ADDSS").unwrap();
        let bsr = insts.find("BSR").unwrap();
        let k = Microkernel::pair(addss, 2, bsr, 1);
        let a = analytic.ipc(&k);
        let s = simulated.ipc(&k);
        assert!((a - 2.0).abs() < 1e-9);
        assert!((s - a).abs() < 0.1, "simulated {s} vs analytic {a}");
    }

    #[test]
    fn noise_changes_but_stays_close() {
        let machine = presets::paper_ports016();
        let map = Arc::new(machine.mapping());
        let insts = map.instructions_arc();
        let exact = AnalyticMeasurer::new(Arc::clone(&map));
        let noisy =
            AnalyticMeasurer::with_noise(Arc::clone(&map), MeasurementNoise::realistic(11));
        let addss = insts.find("ADDSS").unwrap();
        let k = Microkernel::single(addss).scaled(4);
        let e = exact.ipc(&k);
        let n = noisy.ipc(&k);
        assert!((e - n).abs() / e < 0.1);
        // determinism
        assert_eq!(noisy.ipc(&k), n);
    }

    #[test]
    fn memoizing_measurer_counts_distinct_kernels() {
        let machine = presets::paper_ports016();
        let map = Arc::new(machine.mapping());
        let insts = map.instructions_arc();
        let m = MemoizingMeasurer::new(AnalyticMeasurer::new(map));
        let addss = insts.find("ADDSS").unwrap();
        let bsr = insts.find("BSR").unwrap();
        let k1 = Microkernel::single(addss);
        let k2 = Microkernel::pair(addss, 1, bsr, 1);
        let _ = m.ipc(&k1);
        let _ = m.ipc(&k1);
        let _ = m.ipc(&k2);
        assert_eq!(m.distinct_kernels(), 2);
        assert_eq!(m.measurement_count(), 2);
    }

    #[test]
    fn counting_measurer_counts_every_call() {
        let machine = presets::paper_ports016();
        let map = Arc::new(machine.mapping());
        let insts = map.instructions_arc();
        let m = CountingMeasurer::new(AnalyticMeasurer::new(map));
        let addss = insts.find("ADDSS").unwrap();
        let k = Microkernel::single(addss);
        let _ = m.ipc(&k);
        let _ = m.ipc(&k);
        assert_eq!(m.calls(), 2);
    }

    #[test]
    fn measurer_is_object_safe_and_usable_by_reference() {
        let machine = presets::paper_ports016();
        let map = Arc::new(machine.mapping());
        let insts = map.instructions_arc();
        let analytic = AnalyticMeasurer::new(map);
        let as_dyn: &dyn Measurer = &analytic;
        let addss = insts.find("ADDSS").unwrap();
        assert!(as_dyn.ipc(&Microkernel::single(addss)) > 0.0);
        fn generic<M: Measurer>(m: &M, k: &Microkernel) -> f64 {
            m.ipc(k)
        }
        assert!(generic(&&analytic, &Microkernel::single(addss)) > 0.0);
    }
}
