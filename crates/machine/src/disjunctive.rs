//! Machine descriptions and disjunctive (ground-truth) port mappings.
//!
//! A [`MachineDescription`] is the hidden truth about a CPU: how many ports
//! it has, how wide its front-end is, and how every execution class
//! decomposes into µOPs.  Binding a description to a concrete
//! [`InstructionSet`] yields a [`DisjunctiveMapping`], the tripartite
//! "instruction → µOPs → ports" graph of Fig. 1a, which the simulator
//! executes and which Palmed tries to re-discover from the outside.

use crate::port::{MicroOp, PortSet};
use palmed_isa::{ExecClass, InstId, InstructionSet, Microkernel};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Front-end model: a cap on how many instructions (and µOPs) can be decoded
/// and issued per cycle, independently of the execution ports.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrontEnd {
    /// Maximum instructions decoded per cycle (4 on SKL-SP, 5 on Zen1).
    pub instructions_per_cycle: f64,
    /// Maximum µOPs issued per cycle (slightly above the decode width on
    /// real cores; `f64::INFINITY` disables the cap).
    pub uops_per_cycle: f64,
}

impl FrontEnd {
    /// A front-end bound on instructions only.
    pub fn instructions_only(width: f64) -> Self {
        FrontEnd { instructions_per_cycle: width, uops_per_cycle: f64::INFINITY }
    }

    /// No front-end limitation at all (useful for unit tests).
    pub fn unlimited() -> Self {
        FrontEnd { instructions_per_cycle: f64::INFINITY, uops_per_cycle: f64::INFINITY }
    }
}

/// Ground-truth description of a machine, keyed by execution class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineDescription {
    /// Human-readable machine name ("skl-sp-like", ...).
    pub name: String,
    /// Number of execution ports.
    pub num_ports: usize,
    /// Front-end model.
    pub front_end: FrontEnd,
    /// Out-of-order scheduler window (number of µOPs in flight) used by the
    /// cycle-level simulator; irrelevant to the analytic bound.
    pub scheduler_window: usize,
    /// µOP decomposition of every execution class.
    pub class_map: BTreeMap<ExecClass, Vec<MicroOp>>,
}

impl MachineDescription {
    /// Creates a description with an empty class map.
    pub fn new(name: impl Into<String>, num_ports: usize, front_end: FrontEnd) -> Self {
        MachineDescription {
            name: name.into(),
            num_ports,
            front_end,
            scheduler_window: 97,
            class_map: BTreeMap::new(),
        }
    }

    /// Registers the µOP decomposition of an execution class.
    ///
    /// # Panics
    ///
    /// Panics if a µOP references a port outside `0..num_ports`.
    pub fn define_class(&mut self, class: ExecClass, uops: Vec<MicroOp>) -> &mut Self {
        for u in &uops {
            for p in u.ports.iter() {
                assert!(
                    p.index() < self.num_ports,
                    "µOP for {class} references port {p} but machine `{}` has {} ports",
                    self.name,
                    self.num_ports
                );
            }
            assert!(!u.ports.is_empty(), "µOP for {class} has an empty port set");
        }
        self.class_map.insert(class, uops);
        self
    }

    /// µOP decomposition of a class, if defined.
    pub fn class_uops(&self, class: ExecClass) -> Option<&[MicroOp]> {
        self.class_map.get(&class).map(Vec::as_slice)
    }

    /// Whether every execution class present in `insts` is defined.
    pub fn covers(&self, insts: &InstructionSet) -> bool {
        insts.iter().all(|(_, d)| self.class_map.contains_key(&d.class))
    }

    /// Binds this description to an instruction set, producing the resolved
    /// per-instruction mapping.
    ///
    /// # Panics
    ///
    /// Panics if an instruction's class has no µOP decomposition.
    pub fn bind(self: &Arc<Self>, insts: Arc<InstructionSet>) -> DisjunctiveMapping {
        let uops = insts
            .iter()
            .map(|(_, d)| {
                self.class_uops(d.class)
                    .unwrap_or_else(|| {
                        panic!("machine `{}` does not define class {}", self.name, d.class)
                    })
                    .to_vec()
            })
            .collect();
        DisjunctiveMapping { machine: Arc::clone(self), insts, uops }
    }
}

/// A disjunctive tripartite port mapping resolved for a specific instruction
/// set: for every instruction, the list of µOPs it decomposes into.
#[derive(Debug, Clone)]
pub struct DisjunctiveMapping {
    machine: Arc<MachineDescription>,
    insts: Arc<InstructionSet>,
    /// µOPs of every instruction, indexed by [`InstId::index`].
    uops: Vec<Vec<MicroOp>>,
}

impl DisjunctiveMapping {
    /// The underlying machine description.
    pub fn machine(&self) -> &MachineDescription {
        &self.machine
    }

    /// Shared handle on the machine description.
    pub fn machine_arc(&self) -> Arc<MachineDescription> {
        Arc::clone(&self.machine)
    }

    /// The instruction set this mapping was resolved for.
    pub fn instructions(&self) -> &InstructionSet {
        &self.insts
    }

    /// Shared handle on the instruction set.
    pub fn instructions_arc(&self) -> Arc<InstructionSet> {
        Arc::clone(&self.insts)
    }

    /// µOPs of one instruction.
    pub fn uops(&self, inst: InstId) -> &[MicroOp] {
        &self.uops[inst.index()]
    }

    /// Number of µOPs an instruction decomposes into.
    pub fn uop_count(&self, inst: InstId) -> usize {
        self.uops[inst.index()].len()
    }

    /// Union of the ports used by an instruction's µOPs.
    pub fn port_footprint(&self, inst: InstId) -> PortSet {
        self.uops(inst).iter().fold(PortSet::EMPTY, |acc, u| acc.union(u.ports))
    }

    /// Aggregated µOP load of a microkernel: for every distinct µOP port-set
    /// and inverse throughput, the total occupancy (count × multiplicity ×
    /// inverse throughput) generated by one loop iteration.
    pub fn kernel_load(&self, kernel: &Microkernel) -> Vec<(PortSet, f64)> {
        let mut by_ports: BTreeMap<PortSet, f64> = BTreeMap::new();
        for (inst, count) in kernel.iter() {
            for u in self.uops(inst) {
                *by_ports.entry(u.ports).or_insert(0.0) += count as f64 * u.inverse_throughput;
            }
        }
        by_ports.into_iter().collect()
    }

    /// Total number of µOPs of one kernel iteration (front-end pressure).
    pub fn kernel_uop_count(&self, kernel: &Microkernel) -> f64 {
        kernel.iter().map(|(inst, count)| count as f64 * self.uop_count(inst) as f64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use palmed_isa::{InstDesc, InventoryConfig};

    fn tiny_machine() -> Arc<MachineDescription> {
        let mut m = MachineDescription::new("tiny", 2, FrontEnd::instructions_only(4.0));
        m.define_class(ExecClass::IntAlu, vec![MicroOp::pipelined(PortSet::from_ports([0, 1]))]);
        m.define_class(ExecClass::IntMul, vec![MicroOp::pipelined(PortSet::from_ports([1]))]);
        m.define_class(
            ExecClass::Store,
            vec![
                MicroOp::pipelined(PortSet::from_ports([0])),
                MicroOp::pipelined(PortSet::from_ports([1])),
            ],
        );
        Arc::new(m)
    }

    fn tiny_insts() -> Arc<InstructionSet> {
        Arc::new(InstructionSet::from_descs([
            InstDesc::new("ADD", ExecClass::IntAlu),
            InstDesc::new("IMUL", ExecClass::IntMul),
            InstDesc::new("STORE", ExecClass::Store),
        ]))
    }

    #[test]
    fn binding_resolves_uops() {
        let m = tiny_machine();
        let insts = tiny_insts();
        let map = m.bind(Arc::clone(&insts));
        let add = insts.find("ADD").unwrap();
        let store = insts.find("STORE").unwrap();
        assert_eq!(map.uop_count(add), 1);
        assert_eq!(map.uop_count(store), 2);
        assert_eq!(map.port_footprint(add), PortSet::from_ports([0, 1]));
    }

    #[test]
    fn kernel_load_accumulates_per_port_set() {
        let m = tiny_machine();
        let insts = tiny_insts();
        let map = m.bind(Arc::clone(&insts));
        let add = insts.find("ADD").unwrap();
        let mul = insts.find("IMUL").unwrap();
        let k = Microkernel::pair(add, 2, mul, 1);
        let load = map.kernel_load(&k);
        // {0,1} -> 2.0 from ADD, {1} -> 1.0 from IMUL
        assert_eq!(load.len(), 2);
        let total: f64 = load.iter().map(|&(_, l)| l).sum();
        assert!((total - 3.0).abs() < 1e-12);
        assert!((map.kernel_uop_count(&k) - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "does not define class")]
    fn binding_requires_full_coverage() {
        let m = tiny_machine();
        let insts = Arc::new(InstructionSet::from_descs([InstDesc::new(
            "DIVSS",
            ExecClass::FpDivSse,
        )]));
        let _ = m.bind(insts);
    }

    #[test]
    #[should_panic(expected = "references port")]
    fn defining_class_checks_port_range() {
        let mut m = MachineDescription::new("bad", 2, FrontEnd::unlimited());
        m.define_class(ExecClass::IntAlu, vec![MicroOp::pipelined(PortSet::from_ports([5]))]);
    }

    #[test]
    fn covers_reports_missing_classes() {
        let m = tiny_machine();
        assert!(m.covers(&tiny_insts()));
        let extra = InstructionSet::synthetic(&InventoryConfig::small());
        assert!(!m.covers(&extra));
    }
}
