//! Machine descriptions and disjunctive (ground-truth) port mappings.
//!
//! A [`MachineDescription`] is the hidden truth about a CPU: how many ports
//! it has, how wide its front-end is, and how every execution class
//! decomposes into µOPs.  Binding a description to a concrete
//! [`InstructionSet`] yields a [`DisjunctiveMapping`], the tripartite
//! "instruction → µOPs → ports" graph of Fig. 1a, which the simulator
//! executes and which Palmed tries to re-discover from the outside.

use crate::port::{MicroOp, PortSet};
use palmed_isa::{ExecClass, InstId, InstructionSet, Microkernel};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Front-end model: a cap on how many instructions (and µOPs) can be decoded
/// and issued per cycle, independently of the execution ports.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrontEnd {
    /// Maximum instructions decoded per cycle (4 on SKL-SP, 5 on Zen1).
    pub instructions_per_cycle: f64,
    /// Maximum µOPs issued per cycle (slightly above the decode width on
    /// real cores; `f64::INFINITY` disables the cap).
    pub uops_per_cycle: f64,
}

impl FrontEnd {
    /// A front-end bound on instructions only.
    pub fn instructions_only(width: f64) -> Self {
        FrontEnd { instructions_per_cycle: width, uops_per_cycle: f64::INFINITY }
    }

    /// No front-end limitation at all (useful for unit tests).
    pub fn unlimited() -> Self {
        FrontEnd { instructions_per_cycle: f64::INFINITY, uops_per_cycle: f64::INFINITY }
    }
}

/// Ground-truth description of a machine, keyed by execution class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineDescription {
    /// Human-readable machine name ("skl-sp-like", ...).
    pub name: String,
    /// Number of execution ports.
    pub num_ports: usize,
    /// Front-end model.
    pub front_end: FrontEnd,
    /// Out-of-order scheduler window (number of µOPs in flight) used by the
    /// cycle-level simulator; irrelevant to the analytic bound.
    pub scheduler_window: usize,
    /// µOP decomposition of every execution class.
    pub class_map: BTreeMap<ExecClass, Vec<MicroOp>>,
}

impl MachineDescription {
    /// Creates a description with an empty class map.
    pub fn new(name: impl Into<String>, num_ports: usize, front_end: FrontEnd) -> Self {
        MachineDescription {
            name: name.into(),
            num_ports,
            front_end,
            scheduler_window: 97,
            class_map: BTreeMap::new(),
        }
    }

    /// Registers the µOP decomposition of an execution class.
    ///
    /// # Panics
    ///
    /// Panics if a µOP references a port outside `0..num_ports`.
    pub fn define_class(&mut self, class: ExecClass, uops: Vec<MicroOp>) -> &mut Self {
        for u in &uops {
            for p in u.ports.iter() {
                assert!(
                    p.index() < self.num_ports,
                    "µOP for {class} references port {p} but machine `{}` has {} ports",
                    self.name,
                    self.num_ports
                );
            }
            assert!(!u.ports.is_empty(), "µOP for {class} has an empty port set");
        }
        self.class_map.insert(class, uops);
        self
    }

    /// µOP decomposition of a class, if defined.
    pub fn class_uops(&self, class: ExecClass) -> Option<&[MicroOp]> {
        self.class_map.get(&class).map(Vec::as_slice)
    }

    /// Whether every execution class present in `insts` is defined.
    pub fn covers(&self, insts: &InstructionSet) -> bool {
        insts.iter().all(|(_, d)| self.class_map.contains_key(&d.class))
    }

    /// Rebuilds a description from per-instruction µOP rows (`(port mask,
    /// inverse throughput)` pairs) — the inverse of
    /// [`DisjunctiveMapping::uop_rows`], and the path a persisted
    /// disjunctive artifact takes back into a bindable machine description.
    ///
    /// The class map is keyed by execution class, so every instruction of a
    /// class present in `rows` must carry the same µOPs; instructions (and
    /// classes) without a row are simply left undefined, exactly like a
    /// hand-built description that does not cover them.
    ///
    /// # Errors
    ///
    /// Rejects rows referencing instructions outside `insts`, empty rows or
    /// masks, masks using ports at or beyond `num_ports`, non-finite or
    /// non-positive inverse throughputs, and two instructions of one class
    /// with differing µOPs.
    pub fn from_uop_rows(
        name: impl Into<String>,
        num_ports: usize,
        front_end: FrontEnd,
        insts: &InstructionSet,
        rows: &[(InstId, Vec<(u32, f64)>)],
    ) -> Result<MachineDescription, String> {
        let mut description = MachineDescription::new(name, num_ports, front_end);
        for (inst, row) in rows {
            if inst.index() >= insts.len() {
                return Err(format!(
                    "row references {inst} but the instruction set has {} entries",
                    insts.len()
                ));
            }
            if row.is_empty() {
                return Err(format!("row for {inst} has no µOPs"));
            }
            let mut uops = Vec::with_capacity(row.len());
            for &(mask, inverse_throughput) in row {
                if mask == 0 || (num_ports < 32 && mask >= (1u32 << num_ports)) {
                    return Err(format!(
                        "µOP mask {mask:#b} of {inst} is empty or exceeds {num_ports} ports"
                    ));
                }
                if !inverse_throughput.is_finite() || inverse_throughput <= 0.0 {
                    return Err(format!(
                        "µOP inverse throughput {inverse_throughput} of {inst} is not finite \
                         and positive"
                    ));
                }
                uops.push(MicroOp { ports: PortSet::from_mask(mask), inverse_throughput });
            }
            let class = insts.desc(*inst).class;
            match description.class_map.get(&class) {
                Some(existing) if *existing != uops => {
                    return Err(format!(
                        "instructions of class {class} disagree on their µOPs \
                         (the class map is keyed by class)"
                    ));
                }
                Some(_) => {}
                None => {
                    description.class_map.insert(class, uops);
                }
            }
        }
        Ok(description)
    }

    /// Binds this description to an instruction set, producing the resolved
    /// per-instruction mapping.
    ///
    /// # Panics
    ///
    /// Panics if an instruction's class has no µOP decomposition.
    pub fn bind(self: &Arc<Self>, insts: Arc<InstructionSet>) -> DisjunctiveMapping {
        let uops = insts
            .iter()
            .map(|(_, d)| {
                self.class_uops(d.class)
                    .unwrap_or_else(|| {
                        panic!("machine `{}` does not define class {}", self.name, d.class)
                    })
                    .to_vec()
            })
            .collect();
        DisjunctiveMapping { machine: Arc::clone(self), insts, uops }
    }
}

/// A disjunctive tripartite port mapping resolved for a specific instruction
/// set: for every instruction, the list of µOPs it decomposes into.
#[derive(Debug, Clone)]
pub struct DisjunctiveMapping {
    machine: Arc<MachineDescription>,
    insts: Arc<InstructionSet>,
    /// µOPs of every instruction, indexed by [`InstId::index`].
    uops: Vec<Vec<MicroOp>>,
}

impl DisjunctiveMapping {
    /// The underlying machine description.
    pub fn machine(&self) -> &MachineDescription {
        &self.machine
    }

    /// Shared handle on the machine description.
    pub fn machine_arc(&self) -> Arc<MachineDescription> {
        Arc::clone(&self.machine)
    }

    /// The instruction set this mapping was resolved for.
    pub fn instructions(&self) -> &InstructionSet {
        &self.insts
    }

    /// Shared handle on the instruction set.
    pub fn instructions_arc(&self) -> Arc<InstructionSet> {
        Arc::clone(&self.insts)
    }

    /// µOPs of one instruction.
    pub fn uops(&self, inst: InstId) -> &[MicroOp] {
        &self.uops[inst.index()]
    }

    /// Number of µOPs an instruction decomposes into.
    pub fn uop_count(&self, inst: InstId) -> usize {
        self.uops[inst.index()].len()
    }

    /// Union of the ports used by an instruction's µOPs.
    pub fn port_footprint(&self, inst: InstId) -> PortSet {
        self.uops(inst).iter().fold(PortSet::EMPTY, |acc, u| acc.union(u.ports))
    }

    /// Aggregated µOP load of a microkernel: for every distinct µOP port-set
    /// and inverse throughput, the total occupancy (count × multiplicity ×
    /// inverse throughput) generated by one loop iteration.
    pub fn kernel_load(&self, kernel: &Microkernel) -> Vec<(PortSet, f64)> {
        let mut by_ports: BTreeMap<PortSet, f64> = BTreeMap::new();
        for (inst, count) in kernel.iter() {
            for u in self.uops(inst) {
                *by_ports.entry(u.ports).or_insert(0.0) += count as f64 * u.inverse_throughput;
            }
        }
        by_ports.into_iter().collect()
    }

    /// Total number of µOPs of one kernel iteration (front-end pressure).
    pub fn kernel_uop_count(&self, kernel: &Microkernel) -> f64 {
        kernel.iter().map(|(inst, count)| count as f64 * self.uop_count(inst) as f64).sum()
    }

    /// Flattens the resolved mapping into per-instruction µOP rows —
    /// `(port mask, inverse throughput)` pairs per instruction, the
    /// interchange form disjunctive artifacts persist.  One row per
    /// instruction of the set, in instruction order; the inverse of
    /// [`MachineDescription::from_uop_rows`] up to class-level sharing.
    pub fn uop_rows(&self) -> Vec<(InstId, Vec<(u32, f64)>)> {
        self.insts
            .ids()
            .map(|inst| {
                let row = self
                    .uops(inst)
                    .iter()
                    .map(|u| (u.ports.mask(), u.inverse_throughput))
                    .collect();
                (inst, row)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use palmed_isa::{InstDesc, InventoryConfig};

    fn tiny_machine() -> Arc<MachineDescription> {
        let mut m = MachineDescription::new("tiny", 2, FrontEnd::instructions_only(4.0));
        m.define_class(ExecClass::IntAlu, vec![MicroOp::pipelined(PortSet::from_ports([0, 1]))]);
        m.define_class(ExecClass::IntMul, vec![MicroOp::pipelined(PortSet::from_ports([1]))]);
        m.define_class(
            ExecClass::Store,
            vec![
                MicroOp::pipelined(PortSet::from_ports([0])),
                MicroOp::pipelined(PortSet::from_ports([1])),
            ],
        );
        Arc::new(m)
    }

    fn tiny_insts() -> Arc<InstructionSet> {
        Arc::new(InstructionSet::from_descs([
            InstDesc::new("ADD", ExecClass::IntAlu),
            InstDesc::new("IMUL", ExecClass::IntMul),
            InstDesc::new("STORE", ExecClass::Store),
        ]))
    }

    #[test]
    fn binding_resolves_uops() {
        let m = tiny_machine();
        let insts = tiny_insts();
        let map = m.bind(Arc::clone(&insts));
        let add = insts.find("ADD").unwrap();
        let store = insts.find("STORE").unwrap();
        assert_eq!(map.uop_count(add), 1);
        assert_eq!(map.uop_count(store), 2);
        assert_eq!(map.port_footprint(add), PortSet::from_ports([0, 1]));
    }

    #[test]
    fn kernel_load_accumulates_per_port_set() {
        let m = tiny_machine();
        let insts = tiny_insts();
        let map = m.bind(Arc::clone(&insts));
        let add = insts.find("ADD").unwrap();
        let mul = insts.find("IMUL").unwrap();
        let k = Microkernel::pair(add, 2, mul, 1);
        let load = map.kernel_load(&k);
        // {0,1} -> 2.0 from ADD, {1} -> 1.0 from IMUL
        assert_eq!(load.len(), 2);
        let total: f64 = load.iter().map(|&(_, l)| l).sum();
        assert!((total - 3.0).abs() < 1e-12);
        assert!((map.kernel_uop_count(&k) - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "does not define class")]
    fn binding_requires_full_coverage() {
        let m = tiny_machine();
        let insts = Arc::new(InstructionSet::from_descs([InstDesc::new(
            "DIVSS",
            ExecClass::FpDivSse,
        )]));
        let _ = m.bind(insts);
    }

    #[test]
    #[should_panic(expected = "references port")]
    fn defining_class_checks_port_range() {
        let mut m = MachineDescription::new("bad", 2, FrontEnd::unlimited());
        m.define_class(ExecClass::IntAlu, vec![MicroOp::pipelined(PortSet::from_ports([5]))]);
    }

    #[test]
    fn uop_rows_round_trip_through_from_uop_rows() {
        let m = tiny_machine();
        let insts = tiny_insts();
        let map = m.bind(Arc::clone(&insts));
        let rows = map.uop_rows();
        assert_eq!(rows.len(), insts.len());
        let rebuilt = MachineDescription::from_uop_rows(
            "tiny-rebuilt",
            m.num_ports,
            m.front_end,
            &insts,
            &rows,
        )
        .unwrap();
        assert_eq!(rebuilt.class_map, m.class_map);
        let rebound = Arc::new(rebuilt).bind(Arc::clone(&insts));
        for id in insts.ids() {
            assert_eq!(rebound.uops(id), map.uops(id), "{id}");
        }
        assert_eq!(rebound.uop_rows(), rows);
    }

    #[test]
    fn from_uop_rows_rejects_inconsistent_and_invalid_rows() {
        let insts = tiny_insts();
        let fe = FrontEnd::unlimited();
        let ok = |rows: &[(InstId, Vec<(u32, f64)>)]| {
            MachineDescription::from_uop_rows("t", 2, fe, &insts, rows)
        };
        assert!(ok(&[(InstId(0), vec![(0b01, 1.0)])]).is_ok());
        assert!(ok(&[(InstId(9), vec![(0b01, 1.0)])]).is_err(), "unknown instruction");
        assert!(ok(&[(InstId(0), vec![])]).is_err(), "empty row");
        assert!(ok(&[(InstId(0), vec![(0, 1.0)])]).is_err(), "empty mask");
        assert!(ok(&[(InstId(0), vec![(0b100, 1.0)])]).is_err(), "mask beyond ports");
        assert!(ok(&[(InstId(0), vec![(0b01, 0.0)])]).is_err(), "zero throughput");
        assert!(ok(&[(InstId(0), vec![(0b01, f64::INFINITY)])]).is_err(), "infinite");
        // Two IntAlu-class instructions disagreeing on µOPs: the class map
        // cannot represent that.
        let more = Arc::new(InstructionSet::from_descs([
            InstDesc::new("ADD", ExecClass::IntAlu),
            InstDesc::new("SUB", ExecClass::IntAlu),
        ]));
        assert!(MachineDescription::from_uop_rows(
            "t",
            2,
            fe,
            &more,
            &[(InstId(0), vec![(0b01, 1.0)]), (InstId(1), vec![(0b10, 1.0)])],
        )
        .is_err());
        // Agreement is fine.
        assert!(MachineDescription::from_uop_rows(
            "t",
            2,
            fe,
            &more,
            &[(InstId(0), vec![(0b01, 1.0)]), (InstId(1), vec![(0b01, 1.0)])],
        )
        .is_ok());
    }

    #[test]
    fn covers_reports_missing_classes() {
        let m = tiny_machine();
        assert!(m.covers(&tiny_insts()));
        let extra = InstructionSet::synthetic(&InventoryConfig::small());
        assert!(!m.covers(&extra));
    }
}
