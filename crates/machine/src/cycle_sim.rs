//! Cycle-level greedy issue simulator.
//!
//! The analytic bound of [`crate::throughput`] assumes a perfect scheduler.
//! Real out-of-order cores come close to it on dependency-free code, but they
//! schedule greedily with a finite reservation-station window and an in-order
//! front-end.  This module simulates exactly that: it is the "native
//! execution" back-end of the reproduction, producing IPC numbers that are
//! realistic (slightly below the analytic optimum on some mixes) and
//! therefore give the inference pipeline the same kind of imperfect data the
//! paper's measurements did.
//!
//! The model per cycle:
//!
//! 1. **Fetch/decode**: up to `front_end.instructions_per_cycle` instructions
//!    are taken from the kernel body (repeated round-robin) and their µOPs
//!    are placed in the scheduler window, as long as there is room.
//! 2. **Dispatch**: every port picks, among ready µOPs that list it, the one
//!    that entered the window first (oldest-first), unless the port is still
//!    busy with a previous non-pipelined µOP.
//!
//! There are no dependencies and no memory system — microkernels are
//! dependency-free and L1-resident by construction (Sec. III-A of the paper).

use crate::disjunctive::DisjunctiveMapping;
use palmed_isa::Microkernel;

/// Configuration of the cycle-level simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulationConfig {
    /// Number of warm-up cycles excluded from the measurement.
    pub warmup_cycles: u64,
    /// Number of measured cycles.
    pub measured_cycles: u64,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig { warmup_cycles: 200, measured_cycles: 2_000 }
    }
}

/// One µOP instance waiting in the scheduler window.
#[derive(Debug, Clone, Copy)]
struct PendingUop {
    /// Index of the µOP kind in the flattened kernel body.
    kind: usize,
    /// Sequence number used for oldest-first scheduling.
    sequence: u64,
}

/// Result of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulationResult {
    /// Measured instructions per cycle.
    pub ipc: f64,
    /// Instructions retired during the measured window.
    pub instructions_retired: u64,
    /// Cycles in the measured window.
    pub cycles: u64,
}

/// Simulates the steady-state execution of `kernel` and returns its IPC.
pub fn simulate_ipc(
    mapping: &DisjunctiveMapping,
    kernel: &Microkernel,
    config: &SimulationConfig,
) -> SimulationResult {
    if kernel.is_empty() {
        return SimulationResult { ipc: 0.0, instructions_retired: 0, cycles: 0 };
    }
    let machine = mapping.machine();
    let num_ports = machine.num_ports;
    let window = machine.scheduler_window.max(1);
    let fe_insts = machine.front_end.instructions_per_cycle;
    let fe_uops = machine.front_end.uops_per_cycle;

    // Flatten the kernel body: one entry per instruction instance, each with
    // its µOP kinds.  µOP kinds are stored once in `uop_ports`.
    let mut body: Vec<Vec<usize>> = Vec::new(); // per instruction: µOP kind indices
    let mut uop_ports: Vec<(u32, f64)> = Vec::new(); // port mask, busy cycles
    for (inst, count) in kernel.iter() {
        let mut kinds = Vec::new();
        for u in mapping.uops(inst) {
            let kind = uop_ports.len();
            uop_ports.push((u.ports.mask(), u.inverse_throughput));
            kinds.push(kind);
        }
        for _ in 0..count {
            body.push(kinds.clone());
        }
    }

    let mut pending: Vec<PendingUop> = Vec::new();
    let mut port_busy_until = vec![0u64; num_ports];
    let mut next_instruction = 0usize; // index into body (wraps)
    let mut sequence = 0u64;
    // Fractional front-end credit accumulators support non-integer widths.
    let mut fetch_credit = 0.0f64;
    let mut uop_credit = 0.0f64;

    let mut retired_instructions = 0u64;
    let mut measured_instructions = 0u64;
    // An instruction is "retired" for IPC purposes when fetched; since there
    // are no dependencies, every fetched instruction completes a bounded
    // number of cycles later, so in steady state fetch rate == retire rate.
    let total_cycles = config.warmup_cycles + config.measured_cycles;

    for cycle in 0..total_cycles {
        // Fetch.
        fetch_credit = (fetch_credit + fe_insts).min(fe_insts.max(1.0) * 2.0);
        if fe_uops.is_finite() {
            uop_credit = (uop_credit + fe_uops).min(fe_uops * 2.0);
        }
        loop {
            let kinds = &body[next_instruction];
            let uop_cost = kinds.len() as f64;
            if fetch_credit < 1.0 {
                break;
            }
            if fe_uops.is_finite() && uop_credit < uop_cost {
                break;
            }
            if pending.len() + kinds.len() > window {
                break;
            }
            for &kind in kinds {
                pending.push(PendingUop { kind, sequence });
                sequence += 1;
            }
            fetch_credit -= 1.0;
            if fe_uops.is_finite() {
                uop_credit -= uop_cost;
            }
            next_instruction = (next_instruction + 1) % body.len();
            retired_instructions += 1;
            if cycle >= config.warmup_cycles {
                measured_instructions += 1;
            }
        }

        // Dispatch: each free port takes the oldest compatible pending µOP.
        for (port, busy_until) in port_busy_until.iter_mut().enumerate().take(num_ports) {
            if *busy_until > cycle {
                continue;
            }
            let mut chosen: Option<usize> = None;
            for (idx, p) in pending.iter().enumerate() {
                let (mask, _) = uop_ports[p.kind];
                if mask & (1 << port) != 0 {
                    match chosen {
                        None => chosen = Some(idx),
                        Some(c) if pending[idx].sequence < pending[c].sequence => {
                            chosen = Some(idx)
                        }
                        _ => {}
                    }
                }
            }
            if let Some(idx) = chosen {
                let uop = pending.swap_remove(idx);
                let (_, busy) = uop_ports[uop.kind];
                *busy_until = cycle + busy.ceil() as u64;
            }
        }
    }

    let _ = retired_instructions;
    let cycles = config.measured_cycles.max(1);
    SimulationResult {
        ipc: measured_instructions as f64 / cycles as f64,
        instructions_retired: measured_instructions,
        cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disjunctive::{FrontEnd, MachineDescription};
    use crate::port::{MicroOp, PortSet};
    use crate::throughput;
    use palmed_isa::{ExecClass, InstDesc, InstructionSet};
    use std::sync::Arc;

    fn machine_and_insts() -> (DisjunctiveMapping, Arc<InstructionSet>) {
        let insts = Arc::new(InstructionSet::from_descs([
            InstDesc::new("ADD", ExecClass::IntAlu),
            InstDesc::new("BSR", ExecClass::IntAluRestricted),
            InstDesc::new("IDIV", ExecClass::IntDiv),
            InstDesc::new("ST", ExecClass::Store),
        ]));
        let mut m = MachineDescription::new("sim-test", 4, FrontEnd::instructions_only(4.0));
        m.define_class(ExecClass::IntAlu, vec![MicroOp::pipelined(PortSet::from_ports([0, 1]))]);
        m.define_class(
            ExecClass::IntAluRestricted,
            vec![MicroOp::pipelined(PortSet::from_ports([1]))],
        );
        m.define_class(
            ExecClass::IntDiv,
            vec![MicroOp::non_pipelined(PortSet::from_ports([0]), 6.0)],
        );
        m.define_class(
            ExecClass::Store,
            vec![
                MicroOp::pipelined(PortSet::from_ports([3])),
                MicroOp::pipelined(PortSet::from_ports([2])),
            ],
        );
        (Arc::new(m).bind(Arc::clone(&insts)), insts)
    }

    #[test]
    fn empty_kernel_gives_zero() {
        let (map, _) = machine_and_insts();
        let r = simulate_ipc(&map, &Microkernel::new(), &SimulationConfig::default());
        assert_eq!(r.ipc, 0.0);
    }

    #[test]
    fn single_alu_instruction_reaches_port_bound() {
        let (map, insts) = machine_and_insts();
        let add = insts.find("ADD").unwrap();
        let k = Microkernel::single(add).scaled(8);
        let r = simulate_ipc(&map, &k, &SimulationConfig::default());
        assert!((r.ipc - 2.0).abs() < 0.05, "ipc = {}", r.ipc);
    }

    #[test]
    fn simulation_stays_close_to_analytic_bound() {
        let (map, insts) = machine_and_insts();
        let add = insts.find("ADD").unwrap();
        let bsr = insts.find("BSR").unwrap();
        let st = insts.find("ST").unwrap();
        let kernels = [
            Microkernel::pair(add, 2, bsr, 1),
            Microkernel::pair(add, 1, bsr, 2),
            Microkernel::from_counts([(add, 2), (st, 1), (bsr, 1)]),
        ];
        for k in kernels {
            let analytic = throughput::ipc(&map, &k);
            let simulated = simulate_ipc(&map, &k, &SimulationConfig::default()).ipc;
            assert!(simulated <= analytic + 0.05, "sim {simulated} > analytic {analytic} for {k}");
            assert!(
                simulated >= analytic * 0.85,
                "sim {simulated} way below analytic {analytic} for {k}"
            );
        }
    }

    #[test]
    fn non_pipelined_divider_is_respected() {
        let (map, insts) = machine_and_insts();
        let idiv = insts.find("IDIV").unwrap();
        let k = Microkernel::single(idiv).scaled(2);
        let r = simulate_ipc(&map, &k, &SimulationConfig::default());
        assert!((r.ipc - 1.0 / 6.0).abs() < 0.02, "ipc = {}", r.ipc);
    }

    #[test]
    fn front_end_width_caps_simulated_ipc() {
        let (map, insts) = machine_and_insts();
        let add = insts.find("ADD").unwrap();
        let st = insts.find("ST").unwrap();
        let bsr = insts.find("BSR").unwrap();
        // Plenty of port parallelism: ALU on {0,1}, store on {2},{3}, BSR on {1}.
        let k = Microkernel::from_counts([(add, 2), (st, 2), (bsr, 1)]);
        let r = simulate_ipc(&map, &k, &SimulationConfig::default());
        assert!(r.ipc <= 4.0 + 1e-9);
    }
}
