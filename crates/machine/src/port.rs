//! Ports, port sets, and µOPs.
//!
//! An execution *port* is a dispatch slot that can start at most one µOP per
//! cycle (throughput 1).  A µOP carries the set of ports it may execute on
//! and an *inverse throughput*: 1 for fully pipelined units, greater than 1
//! for non-pipelined units such as dividers, which occupy their port for
//! several cycles per operation (Sec. II / VI of the paper).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an execution port within a machine description.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PortId(pub u8);

impl PortId {
    /// Raw index of the port.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A set of execution ports, stored as a bit mask (at most 32 ports).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub struct PortSet(u32);

impl PortSet {
    /// Maximum number of ports representable.
    pub const MAX_PORTS: usize = 32;

    /// The empty port set.
    pub const EMPTY: PortSet = PortSet(0);

    /// Creates a set from an iterator of port indices.
    ///
    /// # Panics
    ///
    /// Panics if a port index is 32 or larger.
    pub fn from_ports(ports: impl IntoIterator<Item = u8>) -> Self {
        let mut set = PortSet::EMPTY;
        for p in ports {
            set.insert(PortId(p));
        }
        set
    }

    /// Creates a set directly from a bit mask.
    pub fn from_mask(mask: u32) -> Self {
        PortSet(mask)
    }

    /// Bit mask of the set.
    pub fn mask(self) -> u32 {
        self.0
    }

    /// Inserts a port.
    ///
    /// # Panics
    ///
    /// Panics if the port index is 32 or larger.
    pub fn insert(&mut self, port: PortId) {
        assert!(
            (port.0 as usize) < Self::MAX_PORTS,
            "port index {} exceeds the {}-port limit",
            port.0,
            Self::MAX_PORTS
        );
        self.0 |= 1 << port.0;
    }

    /// Whether the set contains a port.
    pub fn contains(self, port: PortId) -> bool {
        self.0 & (1 << port.0) != 0
    }

    /// Number of ports in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// True when the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// True when `self` is a subset of `other`.
    pub fn is_subset_of(self, other: PortSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Set union.
    #[must_use]
    pub fn union(self, other: PortSet) -> PortSet {
        PortSet(self.0 | other.0)
    }

    /// Set intersection.
    #[must_use]
    pub fn intersection(self, other: PortSet) -> PortSet {
        PortSet(self.0 & other.0)
    }

    /// Iterates over the ports in ascending index order.
    pub fn iter(self) -> impl Iterator<Item = PortId> {
        (0..Self::MAX_PORTS as u8).filter(move |&p| self.0 & (1 << p) != 0).map(PortId)
    }
}

impl FromIterator<PortId> for PortSet {
    fn from_iter<T: IntoIterator<Item = PortId>>(iter: T) -> Self {
        let mut s = PortSet::EMPTY;
        for p in iter {
            s.insert(p);
        }
        s
    }
}

impl fmt::Display for PortSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for p in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            first = false;
            write!(f, "{}", p.0)?;
        }
        write!(f, "}}")
    }
}

/// A micro-operation: the unit of work dispatched to a port.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MicroOp {
    /// Ports this µOP may execute on (disjunctive choice).
    pub ports: PortSet,
    /// Number of cycles the chosen port is busy with this µOP.
    ///
    /// 1.0 for fully pipelined execution units; larger values model
    /// non-pipelined units (dividers), which are exactly the "low-IPC"
    /// instructions the paper treats specially.
    pub inverse_throughput: f64,
}

impl MicroOp {
    /// A fully pipelined µOP on the given ports.
    pub fn pipelined(ports: PortSet) -> Self {
        MicroOp { ports, inverse_throughput: 1.0 }
    }

    /// A non-pipelined µOP occupying its port for `cycles` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is not at least 1.
    pub fn non_pipelined(ports: PortSet, cycles: f64) -> Self {
        assert!(cycles >= 1.0, "inverse throughput must be >= 1, got {cycles}");
        MicroOp { ports, inverse_throughput: cycles }
    }
}

impl fmt::Display for MicroOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.inverse_throughput == 1.0 {
            write!(f, "uop{}", self.ports)
        } else {
            write!(f, "uop{}x{}", self.ports, self.inverse_throughput)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn portset_basic_operations() {
        let a = PortSet::from_ports([0, 1, 6]);
        assert_eq!(a.len(), 3);
        assert!(a.contains(PortId(0)));
        assert!(a.contains(PortId(6)));
        assert!(!a.contains(PortId(2)));
        assert!(!a.is_empty());
        assert!(PortSet::EMPTY.is_empty());
    }

    #[test]
    fn subset_union_intersection() {
        let a = PortSet::from_ports([0, 1]);
        let b = PortSet::from_ports([0, 1, 6]);
        assert!(a.is_subset_of(b));
        assert!(!b.is_subset_of(a));
        assert_eq!(a.union(b), b);
        assert_eq!(a.intersection(b), a);
        assert!(PortSet::EMPTY.is_subset_of(a));
    }

    #[test]
    fn iteration_is_ordered() {
        let a = PortSet::from_ports([6, 0, 3]);
        let ports: Vec<u8> = a.iter().map(|p| p.0).collect();
        assert_eq!(ports, vec![0, 3, 6]);
    }

    #[test]
    fn collect_from_iterator() {
        let a: PortSet = [PortId(2), PortId(5)].into_iter().collect();
        assert_eq!(a, PortSet::from_ports([2, 5]));
    }

    #[test]
    fn display_formats() {
        assert_eq!(PortSet::from_ports([0, 1, 6]).to_string(), "{0,1,6}");
        assert_eq!(PortId(4).to_string(), "p4");
        assert_eq!(MicroOp::pipelined(PortSet::from_ports([2])).to_string(), "uop{2}");
        assert!(MicroOp::non_pipelined(PortSet::from_ports([0]), 4.0).to_string().contains("x4"));
    }

    #[test]
    #[should_panic(expected = "port index")]
    fn oversized_port_panics() {
        PortSet::from_ports([32]);
    }

    #[test]
    #[should_panic(expected = "inverse throughput")]
    fn invalid_inverse_throughput_panics() {
        MicroOp::non_pipelined(PortSet::from_ports([0]), 0.5);
    }

    #[test]
    fn mask_roundtrip() {
        let a = PortSet::from_ports([1, 3]);
        assert_eq!(PortSet::from_mask(a.mask()), a);
    }
}
