//! Ready-made machine models.
//!
//! Two "real" targets mirror the evaluation platforms of the paper:
//!
//! * [`skl_sp`] — a Skylake-SP-like core: 8 unified execution ports, a
//!   4-wide front-end, non-pipelined dividers.  FP/vector operations share
//!   ports 0/1/5 with scalar ALU work, which is what makes Palmed's
//!   resource-minimising model a good fit (the paper's best results are on
//!   this machine).
//! * [`zen1`] — a Zen1-like core: *split* integer (4 ALU + 2 AGU + 1 store)
//!   and floating-point (4 pipes) clusters and a 5-wide front-end.  The
//!   paper observes that Palmed's resource minimisation struggles to
//!   separate the two clusters, degrading accuracy — a behaviour the
//!   evaluation harness reproduces.
//!
//! The pedagogical [`paper_ports016`] machine restricts Skylake to ports
//! {0, 1, 6} and to the six instructions of Fig. 1, so examples and tests
//! can check the exact numbers printed in the paper.

use crate::disjunctive::{DisjunctiveMapping, FrontEnd, MachineDescription};
use crate::port::{MicroOp, PortSet};
use palmed_isa::{ExecClass, InstructionSet, InventoryConfig};
use std::sync::Arc;

/// A machine description bound to the instruction set it is meant to run.
#[derive(Debug, Clone)]
pub struct PresetMachine {
    /// The ground-truth machine description.
    pub description: Arc<MachineDescription>,
    /// The instruction inventory of the target.
    pub instructions: Arc<InstructionSet>,
}

impl PresetMachine {
    /// Resolves the disjunctive mapping of the preset.
    pub fn mapping(&self) -> DisjunctiveMapping {
        self.description.bind(Arc::clone(&self.instructions))
    }

    /// Shared resolved mapping, convenient for measurers.
    pub fn mapping_arc(&self) -> Arc<DisjunctiveMapping> {
        Arc::new(self.mapping())
    }

    /// Name of the machine.
    pub fn name(&self) -> &str {
        &self.description.name
    }
}

fn ports(list: &[u8]) -> PortSet {
    PortSet::from_ports(list.iter().copied())
}

/// Skylake-SP-like machine description (ports only, no instruction set).
///
/// Port roles (a faithful simplification of the documented SKL-SP core):
///
/// | port | units |
/// |------|-------|
/// | p0   | ALU, FP add/mul/FMA, divider, branch (2nd unit) |
/// | p1   | ALU, FP add/mul/FMA, integer multiply, LEA, slow int |
/// | p2   | load / AGU |
/// | p3   | load / AGU |
/// | p4   | store data |
/// | p5   | ALU, vector ALU, vector shuffle, LEA |
/// | p6   | ALU, branch |
/// | p7   | store AGU |
pub fn skl_sp_description() -> Arc<MachineDescription> {
    let mut m = MachineDescription::new("skl-sp-like", 8, FrontEnd::instructions_only(4.0));
    m.scheduler_window = 97;
    m.define_class(ExecClass::IntAlu, vec![MicroOp::pipelined(ports(&[0, 1, 5, 6]))]);
    m.define_class(ExecClass::IntAluRestricted, vec![MicroOp::pipelined(ports(&[1]))]);
    m.define_class(ExecClass::IntMul, vec![MicroOp::pipelined(ports(&[1]))]);
    m.define_class(ExecClass::IntDiv, vec![MicroOp::non_pipelined(ports(&[0]), 6.0)]);
    m.define_class(ExecClass::Lea, vec![MicroOp::pipelined(ports(&[1, 5]))]);
    m.define_class(ExecClass::Branch, vec![MicroOp::pipelined(ports(&[0, 6]))]);
    m.define_class(ExecClass::Jump, vec![MicroOp::pipelined(ports(&[6]))]);
    m.define_class(ExecClass::Load, vec![MicroOp::pipelined(ports(&[2, 3]))]);
    m.define_class(
        ExecClass::Store,
        vec![MicroOp::pipelined(ports(&[4])), MicroOp::pipelined(ports(&[2, 3, 7]))],
    );
    m.define_class(ExecClass::FpAddSse, vec![MicroOp::pipelined(ports(&[0, 1]))]);
    m.define_class(ExecClass::FpMulSse, vec![MicroOp::pipelined(ports(&[0, 1]))]);
    m.define_class(ExecClass::FpDivSse, vec![MicroOp::non_pipelined(ports(&[0]), 3.0)]);
    m.define_class(ExecClass::VecAluSse, vec![MicroOp::pipelined(ports(&[0, 1, 5]))]);
    m.define_class(ExecClass::VecShuffleSse, vec![MicroOp::pipelined(ports(&[5]))]);
    m.define_class(
        ExecClass::VecCvtSse,
        vec![MicroOp::pipelined(ports(&[0, 1])), MicroOp::pipelined(ports(&[0, 1]))],
    );
    m.define_class(ExecClass::FpAddAvx, vec![MicroOp::pipelined(ports(&[0, 1]))]);
    m.define_class(ExecClass::FpMulAvx, vec![MicroOp::pipelined(ports(&[0, 1]))]);
    m.define_class(ExecClass::FpDivAvx, vec![MicroOp::non_pipelined(ports(&[0]), 5.0)]);
    m.define_class(ExecClass::VecAluAvx, vec![MicroOp::pipelined(ports(&[0, 1, 5]))]);
    m.define_class(ExecClass::VecShuffleAvx, vec![MicroOp::pipelined(ports(&[5]))]);
    m.define_class(
        ExecClass::VecStore,
        vec![MicroOp::pipelined(ports(&[4])), MicroOp::pipelined(ports(&[2, 3, 7]))],
    );
    m.define_class(ExecClass::VecLoad, vec![MicroOp::pipelined(ports(&[2, 3]))]);
    Arc::new(m)
}

/// Zen1-like machine description with split integer / FP clusters.
///
/// Port roles: i0–i3 are the four integer ALU pipes (i0/i3 also take
/// branches), a0/a1 the address-generation units, s0 the store-data port,
/// f0–f3 the four floating-point pipes (f0/f1 multiply, f2/f3 add, f3 also
/// divides).  AVX (256-bit) operations split into two 128-bit µOPs.
pub fn zen1_description() -> Arc<MachineDescription> {
    // port numbering: 0..3 = i0..i3, 4..5 = a0..a1, 6 = s0, 7..10 = f0..f3
    let mut m = MachineDescription::new("zen1-like", 11, FrontEnd::instructions_only(5.0));
    m.scheduler_window = 84;
    m.define_class(ExecClass::IntAlu, vec![MicroOp::pipelined(ports(&[0, 1, 2, 3]))]);
    m.define_class(ExecClass::IntAluRestricted, vec![MicroOp::pipelined(ports(&[3]))]);
    m.define_class(ExecClass::IntMul, vec![MicroOp::pipelined(ports(&[1]))]);
    m.define_class(ExecClass::IntDiv, vec![MicroOp::non_pipelined(ports(&[2]), 8.0)]);
    m.define_class(ExecClass::Lea, vec![MicroOp::pipelined(ports(&[0, 1, 2, 3]))]);
    m.define_class(ExecClass::Branch, vec![MicroOp::pipelined(ports(&[0, 3]))]);
    m.define_class(ExecClass::Jump, vec![MicroOp::pipelined(ports(&[3]))]);
    m.define_class(ExecClass::Load, vec![MicroOp::pipelined(ports(&[4, 5]))]);
    m.define_class(
        ExecClass::Store,
        vec![MicroOp::pipelined(ports(&[6])), MicroOp::pipelined(ports(&[4, 5]))],
    );
    m.define_class(ExecClass::FpAddSse, vec![MicroOp::pipelined(ports(&[9, 10]))]);
    m.define_class(ExecClass::FpMulSse, vec![MicroOp::pipelined(ports(&[7, 8]))]);
    m.define_class(ExecClass::FpDivSse, vec![MicroOp::non_pipelined(ports(&[10]), 4.0)]);
    m.define_class(ExecClass::VecAluSse, vec![MicroOp::pipelined(ports(&[7, 8, 9, 10]))]);
    m.define_class(ExecClass::VecShuffleSse, vec![MicroOp::pipelined(ports(&[8, 9]))]);
    m.define_class(
        ExecClass::VecCvtSse,
        vec![MicroOp::pipelined(ports(&[9, 10])), MicroOp::pipelined(ports(&[9, 10]))],
    );
    // 256-bit AVX: two 128-bit halves.
    m.define_class(
        ExecClass::FpAddAvx,
        vec![MicroOp::pipelined(ports(&[9, 10])), MicroOp::pipelined(ports(&[9, 10]))],
    );
    m.define_class(
        ExecClass::FpMulAvx,
        vec![MicroOp::pipelined(ports(&[7, 8])), MicroOp::pipelined(ports(&[7, 8]))],
    );
    m.define_class(
        ExecClass::FpDivAvx,
        vec![
            MicroOp::non_pipelined(ports(&[10]), 4.0),
            MicroOp::non_pipelined(ports(&[10]), 4.0),
        ],
    );
    m.define_class(
        ExecClass::VecAluAvx,
        vec![
            MicroOp::pipelined(ports(&[7, 8, 9, 10])),
            MicroOp::pipelined(ports(&[7, 8, 9, 10])),
        ],
    );
    m.define_class(
        ExecClass::VecShuffleAvx,
        vec![MicroOp::pipelined(ports(&[8, 9])), MicroOp::pipelined(ports(&[8, 9]))],
    );
    m.define_class(
        ExecClass::VecStore,
        vec![
            MicroOp::pipelined(ports(&[6])),
            MicroOp::pipelined(ports(&[4, 5])),
            MicroOp::pipelined(ports(&[6])),
            MicroOp::pipelined(ports(&[4, 5])),
        ],
    );
    m.define_class(
        ExecClass::VecLoad,
        vec![MicroOp::pipelined(ports(&[4, 5])), MicroOp::pipelined(ports(&[4, 5]))],
    );
    Arc::new(m)
}

/// The Skylake-SP-like preset with a synthetic instruction inventory.
pub fn skl_sp(config: &InventoryConfig) -> PresetMachine {
    PresetMachine {
        description: skl_sp_description(),
        instructions: Arc::new(InstructionSet::synthetic(config)),
    }
}

/// The Zen1-like preset with a synthetic instruction inventory.
pub fn zen1(config: &InventoryConfig) -> PresetMachine {
    PresetMachine {
        description: zen1_description(),
        instructions: Arc::new(InstructionSet::synthetic(config)),
    }
}

/// The three-port pedagogical machine of the paper's Sec. III: ports
/// {0, 1, 6} (renumbered 0, 1, 2) and the instructions DIVPS, VCVTT, ADDSS,
/// BSR, JNLE, JMP of Fig. 1.
pub fn paper_ports016() -> PresetMachine {
    let mut m = MachineDescription::new("skl-ports016", 3, FrontEnd::instructions_only(4.0));
    // p0 -> 0, p1 -> 1, p6 -> 2.
    m.define_class(ExecClass::FpDivSse, vec![MicroOp::pipelined(ports(&[0]))]);
    m.define_class(
        ExecClass::VecCvtSse,
        vec![MicroOp::pipelined(ports(&[0, 1])), MicroOp::pipelined(ports(&[0, 1]))],
    );
    m.define_class(ExecClass::FpAddSse, vec![MicroOp::pipelined(ports(&[0, 1]))]);
    m.define_class(ExecClass::IntAluRestricted, vec![MicroOp::pipelined(ports(&[1]))]);
    m.define_class(ExecClass::Branch, vec![MicroOp::pipelined(ports(&[0, 2]))]);
    m.define_class(ExecClass::Jump, vec![MicroOp::pipelined(ports(&[2]))]);
    PresetMachine {
        description: Arc::new(m),
        instructions: Arc::new(InstructionSet::paper_example()),
    }
}

/// A deliberately tiny two-port machine used by fast unit tests: one ALU
/// class on both ports, one restricted class on port 1, one two-µOP store.
pub fn toy_two_port() -> PresetMachine {
    use palmed_isa::InstDesc;
    let mut m = MachineDescription::new("toy2", 2, FrontEnd::instructions_only(4.0));
    m.define_class(ExecClass::IntAlu, vec![MicroOp::pipelined(ports(&[0, 1]))]);
    m.define_class(ExecClass::IntAluRestricted, vec![MicroOp::pipelined(ports(&[1]))]);
    m.define_class(ExecClass::IntMul, vec![MicroOp::pipelined(ports(&[0]))]);
    m.define_class(
        ExecClass::Store,
        vec![MicroOp::pipelined(ports(&[0])), MicroOp::pipelined(ports(&[1]))],
    );
    let insts = InstructionSet::from_descs([
        InstDesc::new("ADD", ExecClass::IntAlu),
        InstDesc::new("BSR", ExecClass::IntAluRestricted),
        InstDesc::new("IMUL", ExecClass::IntMul),
        InstDesc::new("STORE", ExecClass::Store),
    ]);
    PresetMachine { description: Arc::new(m), instructions: Arc::new(insts) }
}

/// All "real" evaluation targets, matching the two platforms of the paper.
pub fn evaluation_targets(config: &InventoryConfig) -> Vec<PresetMachine> {
    vec![skl_sp(config), zen1(config)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::{AnalyticMeasurer, Measurer};
    use crate::throughput::ipc;
    use palmed_isa::Microkernel;

    #[test]
    fn skl_description_covers_full_synthetic_inventory() {
        let preset = skl_sp(&InventoryConfig::default());
        assert!(preset.description.covers(&preset.instructions));
        // Binding must not panic.
        let _ = preset.mapping();
    }

    #[test]
    fn zen_description_covers_full_synthetic_inventory() {
        let preset = zen1(&InventoryConfig::default());
        assert!(preset.description.covers(&preset.instructions));
        let _ = preset.mapping();
    }

    #[test]
    fn skl_alu_throughput_is_four() {
        let preset = skl_sp(&InventoryConfig::small());
        let map = preset.mapping();
        let add = preset.instructions.find("ADD").unwrap();
        let k = Microkernel::single(add).scaled(8);
        assert!((ipc(&map, &k) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn skl_front_end_limits_wide_mixes() {
        // ALU + loads + stores could use 7 ports, but the front-end allows 4.
        let preset = skl_sp(&InventoryConfig::small());
        let map = preset.mapping();
        let add = preset.instructions.find("ADD").unwrap();
        let load = preset.instructions.find("MOV_LD").unwrap();
        let k = Microkernel::from_counts([(add, 4), (load, 2)]);
        let measured = ipc(&map, &k);
        assert!(measured <= 4.0 + 1e-9);
        assert!(measured > 3.5, "expected front-end-bound mix, got {measured}");
    }

    #[test]
    fn zen_int_and_fp_do_not_compete_for_ports() {
        let preset = zen1(&InventoryConfig::small());
        let map = preset.mapping();
        let add = preset.instructions.find("ADD").unwrap();
        let fadd = preset.instructions.find("ADDSS").unwrap();
        let int_only = ipc(&map, &Microkernel::single(add).scaled(4));
        let fp_only = ipc(&map, &Microkernel::single(fadd).scaled(4));
        let mixed = ipc(&map, &Microkernel::pair(add, 2, fadd, 2));
        // Ports do not conflict; the mix is front-end-bound at 5.
        assert!((int_only - 4.0).abs() < 1e-9);
        assert!((fp_only - 2.0).abs() < 1e-9);
        assert!(mixed > 3.9, "mixed = {mixed}");
    }

    #[test]
    fn paper_example_machine_reproduces_figure_1_throughputs() {
        let preset = paper_ports016();
        let map = preset.mapping();
        let measurer = AnalyticMeasurer::new(Arc::new(map));
        let find = |n: &str| preset.instructions.find(n).unwrap();
        let single_ipc = |n: &str| measurer.ipc(&Microkernel::single(find(n)).scaled(6));
        assert!((single_ipc("DIVPS") - 1.0).abs() < 1e-9);
        assert!((single_ipc("BSR") - 1.0).abs() < 1e-9);
        assert!((single_ipc("JMP") - 1.0).abs() < 1e-9);
        assert!((single_ipc("ADDSS") - 2.0).abs() < 1e-9);
        assert!((single_ipc("JNLE") - 2.0).abs() < 1e-9);
        assert!((single_ipc("VCVTT") - 1.0).abs() < 1e-9);
    }

    #[test]
    fn toy_machine_is_consistent() {
        let preset = toy_two_port();
        let map = preset.mapping();
        let add = preset.instructions.find("ADD").unwrap();
        let bsr = preset.instructions.find("BSR").unwrap();
        assert!((ipc(&map, &Microkernel::single(add).scaled(2)) - 2.0).abs() < 1e-9);
        assert!((ipc(&map, &Microkernel::single(bsr).scaled(2)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn evaluation_targets_returns_both_machines() {
        let targets = evaluation_targets(&InventoryConfig::small());
        let names: Vec<&str> = targets.iter().map(|t| t.name()).collect();
        assert_eq!(names, vec!["skl-sp-like", "zen1-like"]);
    }
}
