//! Measurement noise model.
//!
//! Real cycle measurements are never exact: the paper copes with this by
//! rounding benchmark coefficients with a 5 % error budget and by using
//! robust LP objectives.  To exercise those code paths, the simulated
//! measurers can perturb the mathematically exact IPC with deterministic,
//! seedable multiplicative noise and a quantisation step that mimics reading
//! an integer cycle counter over a finite number of loop iterations.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Deterministic multiplicative noise applied to IPC measurements.
///
/// The perturbation for a given kernel is a pure function of `(seed, kernel
/// fingerprint)`, so repeating a measurement returns the same value — like a
/// well-controlled machine where run-to-run variation is dominated by the
/// kernel layout rather than by true randomness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasurementNoise {
    /// Relative standard deviation of the multiplicative noise
    /// (e.g. 0.02 for ±2 %).
    pub relative_sigma: f64,
    /// Number of cycles over which the measurement is taken; the measured
    /// IPC is quantised to `total_instructions / integer cycle count`.
    /// `None` disables quantisation.
    pub measurement_cycles: Option<u64>,
    /// Seed decorrelating different measurement campaigns.
    pub seed: u64,
}

impl MeasurementNoise {
    /// Exact measurements: no noise, no quantisation.
    pub fn none() -> Self {
        MeasurementNoise { relative_sigma: 0.0, measurement_cycles: None, seed: 0 }
    }

    /// A realistic default: ±1 % relative noise and quantisation over a
    /// 10 000-cycle measurement window.
    pub fn realistic(seed: u64) -> Self {
        MeasurementNoise { relative_sigma: 0.01, measurement_cycles: Some(10_000), seed }
    }

    /// True when the noise model changes nothing.
    pub fn is_exact(&self) -> bool {
        self.relative_sigma == 0.0 && self.measurement_cycles.is_none()
    }

    /// Applies the noise model to an exact IPC value for the kernel
    /// identified by `fingerprint` (any stable hash of the kernel).
    pub fn perturb(&self, exact_ipc: f64, fingerprint: u64) -> f64 {
        if exact_ipc <= 0.0 {
            return exact_ipc;
        }
        let mut ipc = exact_ipc;
        if self.relative_sigma > 0.0 {
            let mut rng = StdRng::seed_from_u64(self.seed ^ fingerprint);
            // Sum of uniforms approximates a Gaussian well enough here.
            let u: f64 = (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0;
            ipc *= 1.0 + self.relative_sigma * u;
            ipc = ipc.max(1e-6);
        }
        if let Some(cycles) = self.measurement_cycles {
            // Emulate "run for ~cycles cycles, read an integer cycle counter".
            let cycles = cycles.max(1) as f64;
            let instructions = (ipc * cycles).round();
            let measured_cycles = (instructions / ipc).round().max(1.0);
            ipc = instructions / measured_cycles;
        }
        ipc
    }

    /// Convenience fingerprint helper for arbitrary hashable keys.
    pub fn fingerprint<T: Hash>(value: &T) -> u64 {
        let mut h = DefaultHasher::new();
        value.hash(&mut h);
        h.finish()
    }
}

impl Default for MeasurementNoise {
    fn default() -> Self {
        Self::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_noise_is_identity() {
        let n = MeasurementNoise::none();
        assert!(n.is_exact());
        assert_eq!(n.perturb(1.75, 42), 1.75);
    }

    #[test]
    fn perturbation_is_deterministic() {
        let n = MeasurementNoise::realistic(7);
        assert_eq!(n.perturb(2.0, 99), n.perturb(2.0, 99));
    }

    #[test]
    fn different_fingerprints_give_different_values() {
        let n = MeasurementNoise { relative_sigma: 0.05, measurement_cycles: None, seed: 1 };
        assert_ne!(n.perturb(2.0, 1), n.perturb(2.0, 2));
    }

    #[test]
    fn noise_is_bounded_in_practice() {
        let n = MeasurementNoise::realistic(3);
        for fp in 0..200u64 {
            let v = n.perturb(2.0, fp);
            assert!(v > 1.8 && v < 2.2, "noise too large: {v}");
        }
    }

    #[test]
    fn quantisation_returns_ratio_of_counts() {
        let n = MeasurementNoise { relative_sigma: 0.0, measurement_cycles: Some(100), seed: 0 };
        let v = n.perturb(1.37, 5);
        // Must be representable as instructions/cycles with small integers.
        assert!((v - 1.37).abs() < 0.05);
    }

    #[test]
    fn nonpositive_ipc_passes_through() {
        let n = MeasurementNoise::realistic(1);
        assert_eq!(n.perturb(0.0, 3), 0.0);
    }
}
