//! Exact optimal steady-state throughput of a microkernel on a disjunctive
//! port mapping.
//!
//! In steady state, an optimal scheduler assigns each µOP *fractionally*
//! across its compatible ports (the assignment frequencies `p_{i,r}` of
//! Def. A.2).  The minimal execution time of one loop iteration is then the
//! classic bottleneck bound:
//!
//! ```text
//! t(K) = max over non-empty port subsets J of
//!          ( Σ load of µOPs whose ports ⊆ J ) / |J|
//! ```
//!
//! (a Hall-type condition: work that can only go to `J` must fit in `|J|`
//! slots per cycle), further lowered-bounded by the front-end width.  The
//! subset enumeration is exponential in the number of ports, which is fine
//! for the ≤ 16 ports of real cores; an LP formulation is provided as a
//! cross-check and for machines with many ports.

use crate::disjunctive::DisjunctiveMapping;
use crate::port::PortSet;
use palmed_isa::Microkernel;
use palmed_lp::{Problem, Sense};
use std::collections::BTreeSet;

/// Minimal number of cycles needed to execute one iteration of `kernel` on
/// the mapping, assuming an optimal (fractional) port assignment.
///
/// Returns 0 for an empty kernel.
///
/// The Hall bound is maximised not over all `2^P - 1` port subsets but over
/// the **closure under union of the distinct µOP port sets** occurring in the
/// kernel.  This is exact: for any subset `J`, replacing `J` by the union
/// `J' ⊆ J` of the µOP port sets contained in `J` keeps the confined load
/// identical while only shrinking the divisor `|J|`, so the maximising subset
/// can always be taken to be a union of µOP port sets.  Real kernels use a
/// handful of distinct port sets, so the closure is tiny compared to the
/// power set (and, unlike the power set, independent of the machine's port
/// count).
pub fn optimal_execution_time(mapping: &DisjunctiveMapping, kernel: &Microkernel) -> f64 {
    if kernel.is_empty() {
        return 0.0;
    }
    let loads = mapping.kernel_load(kernel);
    let num_ports = mapping.machine().num_ports;
    assert!(num_ports <= 32, "port-set masks are 32-bit, got {num_ports} ports");

    // Distinct loaded port sets, then their closure under union (worklist).
    let mut generators: Vec<u32> = Vec::new();
    for &(ports, load) in &loads {
        let mask = ports.mask();
        if load > 0.0 && mask != 0 && !generators.contains(&mask) {
            generators.push(mask);
        }
    }
    let mut closure: BTreeSet<u32> = generators.iter().copied().collect();
    let mut frontier: Vec<u32> = generators.clone();
    while let Some(m) = frontier.pop() {
        for &g in &generators {
            let union = m | g;
            if closure.insert(union) {
                frontier.push(union);
            }
        }
    }

    let confined_ratio = |subset: PortSet| -> f64 {
        let mut confined = 0.0;
        for &(ports, load) in &loads {
            if ports.is_subset_of(subset) {
                confined += load;
            }
        }
        confined / subset.len() as f64
    };

    let mut t: f64 = 0.0;
    for &mask in &closure {
        t = t.max(confined_ratio(PortSet::from_mask(mask)));
    }

    // Cross-check against the exhaustive power-set enumeration on machines
    // small enough to afford it.
    #[cfg(debug_assertions)]
    if num_ports <= 12 {
        let mut exhaustive: f64 = 0.0;
        for subset_mask in 1u32..(1u32 << num_ports) {
            exhaustive = exhaustive.max(confined_ratio(PortSet::from_mask(subset_mask)));
        }
        debug_assert!(
            (t - exhaustive).abs() <= 1e-9 * exhaustive.max(1.0),
            "union-closure bound {t} disagrees with power-set bound {exhaustive}"
        );
    }

    // Front-end bounds.
    let fe = mapping.machine().front_end;
    t = t.max(kernel.total_instructions() as f64 / fe.instructions_per_cycle);
    if fe.uops_per_cycle.is_finite() {
        t = t.max(mapping.kernel_uop_count(kernel) / fe.uops_per_cycle);
    }
    t
}

/// Steady-state instructions-per-cycle of `kernel` on the mapping
/// (Def. IV.3 applied to the ground-truth machine).
///
/// Returns 0 for an empty kernel.
pub fn ipc(mapping: &DisjunctiveMapping, kernel: &Microkernel) -> f64 {
    let t = optimal_execution_time(mapping, kernel);
    if t == 0.0 {
        0.0
    } else {
        kernel.total_instructions() as f64 / t
    }
}

/// Same bound computed with an explicit linear program over fractional port
/// assignments; exponential subset enumeration is avoided, at the price of an
/// LP solve.  Used to cross-validate [`optimal_execution_time`] in tests and
/// available for hypothetical many-port machines.
///
/// # Errors
///
/// Propagates LP solver failures (they indicate a bug: the scheduling LP is
/// always feasible and bounded).
pub fn optimal_execution_time_lp(
    mapping: &DisjunctiveMapping,
    kernel: &Microkernel,
) -> Result<f64, palmed_lp::LpError> {
    if kernel.is_empty() {
        return Ok(0.0);
    }
    let loads = mapping.kernel_load(kernel);
    let num_ports = mapping.machine().num_ports;

    let mut p = Problem::new(Sense::Minimize);
    let t = p.add_var("t", 0.0, f64::INFINITY);
    // x[u][port]: cycles of work of µOP-group u assigned to port.
    let mut port_load_exprs = vec![p.expr(); num_ports];
    for (u, &(ports, load)) in loads.iter().enumerate() {
        let mut total = p.expr();
        for port in ports.iter() {
            let x = p.add_var(format!("x_{u}_{port}"), 0.0, f64::INFINITY);
            total.add_term(1.0, x);
            port_load_exprs[port.index()].add_term(1.0, x);
        }
        p.add_eq(total, load);
    }
    for expr in port_load_exprs {
        // port load <= t
        let mut c = expr;
        c.add_term(-1.0, t);
        p.add_le(c, 0.0);
    }
    // Front-end lower bounds on t.
    let fe = mapping.machine().front_end;
    let mut lower = kernel.total_instructions() as f64 / fe.instructions_per_cycle;
    if fe.uops_per_cycle.is_finite() {
        lower = lower.max(mapping.kernel_uop_count(kernel) / fe.uops_per_cycle);
    }
    p.add_ge(p.expr().term(1.0, t), lower);
    p.set_objective(p.expr().term(1.0, t));
    Ok(p.solve()?.objective)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disjunctive::{FrontEnd, MachineDescription};
    use crate::port::MicroOp;
    use palmed_isa::{ExecClass, InstDesc, InstructionSet};
    use std::sync::Arc;

    /// The 3-port machine of the paper's Sec. III (ports 0, 1, 6).
    fn paper_machine() -> (DisjunctiveMapping, Arc<InstructionSet>) {
        let insts = Arc::new(InstructionSet::paper_example());
        let mut m = MachineDescription::new("ports016", 3, FrontEnd::instructions_only(4.0));
        // Ports are renumbered 0 -> p0, 1 -> p1, 2 -> p6.
        m.define_class(ExecClass::FpDivSse, vec![MicroOp::pipelined(PortSet::from_ports([0]))]);
        m.define_class(
            ExecClass::VecCvtSse,
            vec![
                MicroOp::pipelined(PortSet::from_ports([0, 1])),
                MicroOp::pipelined(PortSet::from_ports([0, 1])),
            ],
        );
        m.define_class(ExecClass::FpAddSse, vec![MicroOp::pipelined(PortSet::from_ports([0, 1]))]);
        m.define_class(
            ExecClass::IntAluRestricted,
            vec![MicroOp::pipelined(PortSet::from_ports([1]))],
        );
        m.define_class(ExecClass::Branch, vec![MicroOp::pipelined(PortSet::from_ports([0, 2]))]);
        m.define_class(ExecClass::Jump, vec![MicroOp::pipelined(PortSet::from_ports([2]))]);
        let m = Arc::new(m);
        (m.bind(Arc::clone(&insts)), insts)
    }

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn empty_kernel_is_zero() {
        let (map, _) = paper_machine();
        assert_eq!(optimal_execution_time(&map, &Microkernel::new()), 0.0);
        assert_eq!(ipc(&map, &Microkernel::new()), 0.0);
    }

    #[test]
    fn single_instruction_throughputs_match_the_paper() {
        let (map, insts) = paper_machine();
        let addss = insts.find("ADDSS").unwrap();
        let bsr = insts.find("BSR").unwrap();
        let jmp = insts.find("JMP").unwrap();
        // ADDSS can go to p0 or p1 -> throughput 2; BSR only p1 -> 1; JMP only p6 -> 1.
        assert!(close(ipc(&map, &Microkernel::single(addss).scaled(4)), 2.0));
        assert!(close(ipc(&map, &Microkernel::single(bsr).scaled(4)), 1.0));
        assert!(close(ipc(&map, &Microkernel::single(jmp).scaled(4)), 1.0));
    }

    #[test]
    fn paper_example_addss2_bsr_has_ipc_2() {
        // Fig. 2a: {ADDSS^2, BSR} -> 3 instructions every 1.5 cycles -> IPC 2.
        let (map, insts) = paper_machine();
        let addss = insts.find("ADDSS").unwrap();
        let bsr = insts.find("BSR").unwrap();
        let k = Microkernel::pair(addss, 2, bsr, 1);
        assert!(close(optimal_execution_time(&map, &k), 1.5));
        assert!(close(ipc(&map, &k), 2.0));
    }

    #[test]
    fn paper_example_addss_bsr2_has_ipc_1_5() {
        // Fig. 2b: {ADDSS, BSR^2} is limited by p1 -> 3 instructions / 2 cycles.
        let (map, insts) = paper_machine();
        let addss = insts.find("ADDSS").unwrap();
        let bsr = insts.find("BSR").unwrap();
        let k = Microkernel::pair(addss, 1, bsr, 2);
        assert!(close(optimal_execution_time(&map, &k), 2.0));
        assert!(close(ipc(&map, &k), 1.5));
    }

    #[test]
    fn vcvtt_uses_two_uops() {
        let (map, insts) = paper_machine();
        let vcvtt = insts.find("VCVTT").unwrap();
        // 2 µOPs on {p0,p1} -> one VCVTT per cycle, IPC 1.
        assert!(close(ipc(&map, &Microkernel::single(vcvtt).scaled(4)), 1.0));
    }

    #[test]
    fn front_end_caps_the_ipc() {
        let (map, insts) = paper_machine();
        let addss = insts.find("ADDSS").unwrap();
        let bsr = insts.find("BSR").unwrap();
        let jmp = insts.find("JMP").unwrap();
        let jnle = insts.find("JNLE").unwrap();
        // Port-wise this mix could reach IPC 4 on 3 ports... no: 4 insts on 3
        // ports -> 4/ (4/3) = 3.  Use a mix saturating all three ports plus
        // the front-end: ADDSS^2 BSR JMP JNLE would be 5 instructions, ports
        // load: p0/p1: 2(+jnle may go p0/p6)..; simpler: check the bound holds.
        let k = Microkernel::from_counts([(addss, 2), (bsr, 1), (jmp, 1), (jnle, 1)]);
        let measured = ipc(&map, &k);
        assert!(measured <= 4.0 + 1e-9, "front-end width must cap IPC, got {measured}");
    }

    #[test]
    fn non_pipelined_divider_lowers_ipc() {
        let insts = Arc::new(InstructionSet::from_descs([InstDesc::new(
            "IDIV",
            ExecClass::IntDiv,
        )]));
        let mut m = MachineDescription::new("div", 2, FrontEnd::instructions_only(4.0));
        m.define_class(
            ExecClass::IntDiv,
            vec![MicroOp::non_pipelined(PortSet::from_ports([0]), 5.0)],
        );
        let map = Arc::new(m).bind(Arc::clone(&insts));
        let idiv = insts.find("IDIV").unwrap();
        assert!(close(ipc(&map, &Microkernel::single(idiv).scaled(3)), 1.0 / 5.0));
    }

    #[test]
    fn union_closure_matches_lp_on_a_many_port_machine() {
        // 20 ports: the old power-set enumeration would visit ~10^6 subsets;
        // the union closure visits a handful.  The LP formulation provides an
        // independent exact reference.
        let insts = Arc::new(InstructionSet::from_descs([
            InstDesc::new("A", ExecClass::FpAddSse),
            InstDesc::new("B", ExecClass::IntAluRestricted),
            InstDesc::new("C", ExecClass::Branch),
        ]));
        let mut m = MachineDescription::new("wide", 20, FrontEnd::instructions_only(16.0));
        m.define_class(
            ExecClass::FpAddSse,
            vec![MicroOp::pipelined(PortSet::from_ports([0, 1, 2, 3]))],
        );
        m.define_class(
            ExecClass::IntAluRestricted,
            vec![MicroOp::pipelined(PortSet::from_ports([2, 3, 4]))],
        );
        m.define_class(
            ExecClass::Branch,
            vec![MicroOp::pipelined(PortSet::from_ports([17, 18, 19]))],
        );
        let map = Arc::new(m).bind(Arc::clone(&insts));
        let a = insts.find("A").unwrap();
        let b = insts.find("B").unwrap();
        let c = insts.find("C").unwrap();
        for k in [
            Microkernel::from_counts([(a, 7), (b, 3), (c, 2)]),
            Microkernel::from_counts([(a, 1), (b, 9)]),
            Microkernel::single(c).scaled(5),
        ] {
            let closure = optimal_execution_time(&map, &k);
            let lp = optimal_execution_time_lp(&map, &k).unwrap();
            assert!((closure - lp).abs() < 1e-6, "mismatch for {k}: {closure} vs {lp}");
        }
    }

    #[test]
    fn lp_formulation_agrees_with_subset_enumeration() {
        let (map, insts) = paper_machine();
        let addss = insts.find("ADDSS").unwrap();
        let bsr = insts.find("BSR").unwrap();
        let vcvtt = insts.find("VCVTT").unwrap();
        let jnle = insts.find("JNLE").unwrap();
        let kernels = [
            Microkernel::single(addss),
            Microkernel::pair(addss, 2, bsr, 1),
            Microkernel::pair(addss, 1, bsr, 2),
            Microkernel::from_counts([(vcvtt, 1), (addss, 2), (jnle, 3)]),
            Microkernel::from_counts([(vcvtt, 2), (bsr, 1), (jnle, 1), (addss, 1)]),
        ];
        for k in kernels {
            let subset = optimal_execution_time(&map, &k);
            let lp = optimal_execution_time_lp(&map, &k).unwrap();
            assert!((subset - lp).abs() < 1e-6, "mismatch for {k}: {subset} vs {lp}");
        }
    }
}
