//! Simplex facade: shared options plus the default (sparse revised) solver.
//!
//! Two interchangeable simplex implementations live in this crate:
//!
//! * [`crate::revised`] — sparse revised simplex with implicit variable
//!   bounds, an LU+eta factorised basis and warm starting.  This is the
//!   production path; [`solve`] routes here.
//! * [`crate::simplex_dense`] — the original dense two-phase tableau, kept
//!   for differential testing.
//!
//! Both honour the same [`SimplexOptions`].

use crate::error::LpResult;
use crate::model::{Problem, Solution};
use crate::revised;

/// Options controlling the simplex solvers.
#[derive(Debug, Clone, PartialEq)]
pub struct SimplexOptions {
    /// Hard limit on the number of pivots across both phases.
    pub max_iterations: usize,
    /// Number of Dantzig-rule pivots before switching to Bland's rule.
    pub bland_threshold: usize,
    /// Feasibility / optimality tolerance.
    pub tolerance: f64,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        SimplexOptions { max_iterations: 50_000, bland_threshold: 5_000, tolerance: 1e-8 }
    }
}

/// Solves the continuous LP with the default (sparse revised) simplex.
///
/// # Errors
///
/// Returns [`crate::LpError::Infeasible`], [`crate::LpError::Unbounded`] or
/// [`crate::LpError::IterationLimit`] as appropriate.
pub fn solve(problem: &Problem, options: &SimplexOptions) -> LpResult<Solution> {
    revised::solve(problem, options)
}
