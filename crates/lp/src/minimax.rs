//! Linearisation helpers for `min` / `max` terms.
//!
//! Palmed's formulations are full of maxima: the execution time of a
//! microkernel is the *maximum* load over all abstract resources, and the
//! LP1/LP2 constraints use both `min ... = 0` ("there exists a resource such
//! that ...") and `max`-based saturation variables.  These helpers provide
//! the two standard linearisations:
//!
//! * [`upper_bound_of_max`] — a continuous variable constrained to be at
//!   least every expression; exact when the variable is minimised.
//! * [`exact_max`] — an exact `max` using one binary selector per expression
//!   and a big-M, usable in either optimisation direction.
//! * [`exists_zero`] — the "there exists an expression equal to zero"
//!   disjunction used by LP1, encoded with binary selectors.

use crate::model::{LinExpr, Problem, VarId};

/// Adds a continuous variable `t` with `t >= e` for every expression `e`.
///
/// When `t` is (part of) a minimised objective, `t` equals the maximum of the
/// expressions at the optimum.  Returns the new variable.
pub fn upper_bound_of_max(
    problem: &mut Problem,
    name: impl Into<String>,
    exprs: &[LinExpr],
) -> VarId {
    let t = problem.add_var(name, f64::NEG_INFINITY, f64::INFINITY);
    for e in exprs {
        // t >= e  <=>  t - e >= 0
        let mut c = LinExpr::new().term(1.0, t);
        c.add_scaled(-1.0, e);
        problem.add_ge(c, 0.0);
    }
    t
}

/// Adds a continuous variable `t` with `t <= e` for every expression `e`.
///
/// When `t` is maximised, `t` equals the minimum of the expressions at the
/// optimum.  Returns the new variable.
pub fn lower_bound_of_min(
    problem: &mut Problem,
    name: impl Into<String>,
    exprs: &[LinExpr],
) -> VarId {
    let t = problem.add_var(name, f64::NEG_INFINITY, f64::INFINITY);
    for e in exprs {
        let mut c = LinExpr::new().term(1.0, t);
        c.add_scaled(-1.0, e);
        problem.add_le(c, 0.0);
    }
    t
}

/// Adds an *exact* maximum variable using binary selectors and a big-M.
///
/// Creates `t` and binaries `z_i` such that `sum z_i = 1`, `t >= e_i` and
/// `t <= e_i + M (1 - z_i)`, which forces `t = max_i e_i` for any sufficiently
/// large `M` (an upper bound on the spread of the expressions).
///
/// Returns `(t, selectors)`.
pub fn exact_max(
    problem: &mut Problem,
    name: &str,
    exprs: &[LinExpr],
    big_m: f64,
) -> (VarId, Vec<VarId>) {
    let t = problem.add_var(format!("{name}_max"), f64::NEG_INFINITY, f64::INFINITY);
    let mut selectors = Vec::with_capacity(exprs.len());
    let mut sum = LinExpr::new();
    for (i, e) in exprs.iter().enumerate() {
        let z = problem.add_bool_var(format!("{name}_sel{i}"));
        selectors.push(z);
        sum.add_term(1.0, z);
        // t >= e_i
        let mut lower = LinExpr::new().term(1.0, t);
        lower.add_scaled(-1.0, e);
        problem.add_ge(lower, 0.0);
        // t <= e_i + M (1 - z_i)  <=>  t - e_i + M z_i <= M
        let mut upper = LinExpr::new().term(1.0, t).term(big_m, z);
        upper.add_scaled(-1.0, e);
        problem.add_le(upper, big_m);
    }
    problem.add_eq(sum, 1.0);
    (t, selectors)
}

/// Encodes "there exists `i` such that `e_i = 0`" for non-negative
/// expressions `e_i`, using one binary per expression and a big-M.
///
/// Adds binaries `z_i` with `sum z_i >= 1` and `e_i <= M (1 - z_i)`.  The
/// expressions must be non-negative for the encoding to be exact.
/// Returns the selector variables.
pub fn exists_zero(
    problem: &mut Problem,
    name: &str,
    exprs: &[LinExpr],
    big_m: f64,
) -> Vec<VarId> {
    let mut selectors = Vec::with_capacity(exprs.len());
    let mut sum = LinExpr::new();
    for (i, e) in exprs.iter().enumerate() {
        let z = problem.add_bool_var(format!("{name}_zero{i}"));
        selectors.push(z);
        sum.add_term(1.0, z);
        // e_i + M z_i <= M
        let mut c = LinExpr::new().term(big_m, z);
        c.add_scaled(1.0, e);
        problem.add_le(c, big_m);
    }
    problem.add_ge(sum, 1.0);
    selectors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Problem, Sense};

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6
    }

    #[test]
    fn minimizing_upper_bound_gives_max() {
        // minimise max(x, y, 3) with x = 1, y = 5 fixed.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", 1.0, 1.0);
        let y = p.add_var("y", 5.0, 5.0);
        let exprs = vec![
            LinExpr::new().term(1.0, x),
            LinExpr::new().term(1.0, y),
            LinExpr::constant(3.0),
        ];
        let t = upper_bound_of_max(&mut p, "t", &exprs);
        p.set_objective(p.expr().term(1.0, t));
        let sol = p.solve().unwrap();
        assert!(close(sol[t], 5.0));
    }

    #[test]
    fn maximizing_lower_bound_gives_min() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 2.0, 2.0);
        let y = p.add_var("y", 7.0, 7.0);
        let exprs = vec![LinExpr::new().term(1.0, x), LinExpr::new().term(1.0, y)];
        let t = lower_bound_of_min(&mut p, "t", &exprs);
        p.set_objective(p.expr().term(1.0, t));
        let sol = p.solve().unwrap();
        assert!(close(sol[t], 2.0));
    }

    #[test]
    fn exact_max_holds_even_when_maximized() {
        // maximise z - max(x, y): the max must not be under-estimated.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 4.0, 4.0);
        let y = p.add_var("y", 1.0, 1.0);
        let exprs = vec![LinExpr::new().term(1.0, x), LinExpr::new().term(1.0, y)];
        let (t, _sel) = exact_max(&mut p, "m", &exprs, 100.0);
        // objective: maximise -t  => wants t as small as possible, but the
        // encoding pins t to the true max of 4.
        p.set_objective(p.expr().term(-1.0, t));
        let sol = p.solve().unwrap();
        assert!(close(sol[t], 4.0), "t = {}", sol[t]);
    }

    #[test]
    fn exists_zero_forces_one_expression_to_zero() {
        // x + y >= 3, both in [0, 5], and exists-zero over {x, y}:
        // one of them must be 0, so the other is >= 3.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", 0.0, 5.0);
        let y = p.add_var("y", 0.0, 5.0);
        p.add_ge(p.expr().term(1.0, x).term(1.0, y), 3.0);
        let exprs = vec![LinExpr::new().term(1.0, x), LinExpr::new().term(1.0, y)];
        exists_zero(&mut p, "ez", &exprs, 10.0);
        p.set_objective(p.expr().term(1.0, x).term(1.0, y));
        let sol = p.solve().unwrap();
        let min_value = sol[x].min(sol[y]);
        assert!(min_value.abs() < 1e-6, "one variable must be zero, got {} / {}", sol[x], sol[y]);
        assert!(sol[x].max(sol[y]) >= 3.0 - 1e-6);
    }
}
