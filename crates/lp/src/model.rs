//! Modelling layer: variables, linear expressions, constraints, problems.
//!
//! The types here are deliberately small and dense-friendly: Palmed's linear
//! programs have at most a few hundred variables, so everything is indexed by
//! plain `usize`-backed [`VarId`]s and expressions are sparse term lists.

use std::fmt;
use std::ops::Index;

use crate::error::{LpError, LpResult};
use crate::milp::{self, MilpOptions};
use crate::simplex::{self, SimplexOptions};

/// Identifier of a decision variable inside a [`Problem`].
///
/// `VarId`s are only meaningful for the problem that created them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Raw index of the variable inside its problem.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Optimisation direction of a [`Problem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sense {
    /// Minimise the objective expression.
    Minimize,
    /// Maximise the objective expression.
    Maximize,
}

/// Comparison operator of a [`Constraint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConstraintOp {
    /// `expr <= rhs`
    Le,
    /// `expr >= rhs`
    Ge,
    /// `expr == rhs`
    Eq,
}

/// A sparse linear expression `sum(coefficient * variable) + constant`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinExpr {
    terms: Vec<(VarId, f64)>,
    constant: f64,
}

impl LinExpr {
    /// Creates the zero expression.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an expression consisting only of a constant.
    pub fn constant(value: f64) -> Self {
        LinExpr { terms: Vec::new(), constant: value }
    }

    /// Builder-style addition of a `coefficient * variable` term.
    #[must_use]
    pub fn term(mut self, coefficient: f64, var: VarId) -> Self {
        self.add_term(coefficient, var);
        self
    }

    /// Builder-style addition of a constant offset.
    #[must_use]
    pub fn plus(mut self, value: f64) -> Self {
        self.constant += value;
        self
    }

    /// Adds `coefficient * variable` to the expression in place.
    pub fn add_term(&mut self, coefficient: f64, var: VarId) {
        if coefficient != 0.0 {
            self.terms.push((var, coefficient));
        }
    }

    /// Adds a constant offset in place.
    pub fn add_constant(&mut self, value: f64) {
        self.constant += value;
    }

    /// Adds `scale * other` to this expression.
    pub fn add_scaled(&mut self, scale: f64, other: &LinExpr) {
        for &(v, c) in &other.terms {
            self.add_term(scale * c, v);
        }
        self.constant += scale * other.constant;
    }

    /// The constant part of the expression.
    pub fn constant_part(&self) -> f64 {
        self.constant
    }

    /// Iterates over the (variable, coefficient) terms, duplicates included.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, f64)> + '_ {
        self.terms.iter().copied()
    }

    /// Returns true when the expression has no variable terms.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterates over the coalesced sparse terms of the expression: duplicate
    /// variables are merged, zero coefficients dropped, and terms are yielded
    /// in increasing variable order.
    ///
    /// This is the allocation-light path the solvers use to assemble sparse
    /// standard forms; unlike [`LinExpr::to_dense`] its cost is
    /// `O(k log k)` in the number of terms `k`, independent of the number of
    /// variables in the problem.
    pub fn sparse_terms(&self) -> impl Iterator<Item = (VarId, f64)> + '_ {
        let mut terms = self.terms.clone();
        terms.sort_unstable_by_key(|&(v, _)| v);
        let mut coalesced: Vec<(VarId, f64)> = Vec::with_capacity(terms.len());
        for (v, c) in terms {
            match coalesced.last_mut() {
                Some((last_v, last_c)) if *last_v == v => *last_c += c,
                _ => coalesced.push((v, c)),
            }
        }
        coalesced.into_iter().filter(|&(_, c)| c != 0.0)
    }

    /// Checks that every term references a variable below `n_vars` and has a
    /// finite coefficient, without allocating a dense vector.
    pub(crate) fn validate_against(&self, n_vars: usize) -> LpResult<()> {
        for &(v, c) in &self.terms {
            if v.0 >= n_vars {
                return Err(LpError::UnknownVariable { index: v.0, problem_size: n_vars });
            }
            if !c.is_finite() {
                return Err(LpError::NonFiniteCoefficient { context: format!("term for {v}") });
            }
        }
        Ok(())
    }

    /// Collapses duplicate variable terms into a dense coefficient vector of
    /// length `n_vars`.
    pub fn to_dense(&self, n_vars: usize) -> LpResult<Vec<f64>> {
        let mut dense = vec![0.0; n_vars];
        for &(v, c) in &self.terms {
            if v.0 >= n_vars {
                return Err(LpError::UnknownVariable { index: v.0, problem_size: n_vars });
            }
            if !c.is_finite() {
                return Err(LpError::NonFiniteCoefficient { context: format!("term for {v}") });
            }
            dense[v.0] += c;
        }
        Ok(dense)
    }

    /// Evaluates the expression for a dense assignment of variable values.
    ///
    /// # Panics
    ///
    /// Panics if a referenced variable index is out of range of `values`.
    pub fn evaluate(&self, values: &[f64]) -> f64 {
        let mut acc = self.constant;
        for &(v, c) in &self.terms {
            acc += c * values[v.0];
        }
        acc
    }
}

impl From<f64> for LinExpr {
    fn from(value: f64) -> Self {
        LinExpr::constant(value)
    }
}

/// A single linear constraint `expr (<=|>=|==) rhs`.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// Left-hand side expression (its constant is folded into `rhs`).
    pub expr: LinExpr,
    /// Comparison operator.
    pub op: ConstraintOp,
    /// Right-hand side constant.
    pub rhs: f64,
    /// Optional human-readable label used in debug output.
    pub label: Option<String>,
}

/// Definition of a decision variable.
#[derive(Debug, Clone, PartialEq)]
pub struct VarDef {
    /// Name used for debugging / display purposes.
    pub name: String,
    /// Lower bound (may be `-inf`).
    pub lower: f64,
    /// Upper bound (may be `+inf`).
    pub upper: f64,
    /// Whether the variable is restricted to integer values (MILP only).
    pub integer: bool,
}

/// Solution status reported by the solvers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolveStatus {
    /// Proven optimal within tolerance.
    Optimal,
    /// Feasible but optimality was not proven (node/iteration limit).
    Feasible,
}

/// An optimal (or best-found) assignment of the problem variables.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Value of every variable, indexed by [`VarId::index`].
    pub values: Vec<f64>,
    /// Objective value in the problem's own sense.
    pub objective: f64,
    /// Whether the solution is proven optimal.
    pub status: SolveStatus,
}

impl Solution {
    /// Value of a variable in this solution.
    pub fn value(&self, var: VarId) -> f64 {
        self.values[var.0]
    }
}

impl Index<VarId> for Solution {
    type Output = f64;

    fn index(&self, index: VarId) -> &Self::Output {
        &self.values[index.0]
    }
}

/// A linear (or mixed-integer linear) optimisation problem.
///
/// See the crate-level documentation for a usage example.
#[derive(Debug, Clone)]
pub struct Problem {
    vars: Vec<VarDef>,
    constraints: Vec<Constraint>,
    objective: LinExpr,
    sense: Sense,
}

impl Problem {
    /// Creates an empty problem with the given optimisation sense.
    pub fn new(sense: Sense) -> Self {
        Problem { vars: Vec::new(), constraints: Vec::new(), objective: LinExpr::new(), sense }
    }

    /// Adds a continuous variable with the given bounds and returns its id.
    pub fn add_var(&mut self, name: impl Into<String>, lower: f64, upper: f64) -> VarId {
        self.push_var(name.into(), lower, upper, false)
    }

    /// Adds an integer variable with the given bounds and returns its id.
    pub fn add_int_var(&mut self, name: impl Into<String>, lower: f64, upper: f64) -> VarId {
        self.push_var(name.into(), lower, upper, true)
    }

    /// Adds a binary (0/1 integer) variable and returns its id.
    pub fn add_bool_var(&mut self, name: impl Into<String>) -> VarId {
        self.push_var(name.into(), 0.0, 1.0, true)
    }

    fn push_var(&mut self, name: String, lower: f64, upper: f64, integer: bool) -> VarId {
        let id = VarId(self.vars.len());
        self.vars.push(VarDef { name, lower, upper, integer });
        id
    }

    /// Overwrites the bounds of an existing variable.
    ///
    /// This is how branch-and-bound tightens child-node domains: adjusting
    /// the bound keeps the constraint matrix (and hence any saved [`Basis`])
    /// dimensionally identical, where adding explicit `>=`/`<=` rows would
    /// invalidate warm starts.
    ///
    /// [`Basis`]: crate::revised::Basis
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to this problem.
    pub fn set_var_bounds(&mut self, var: VarId, lower: f64, upper: f64) {
        let def = &mut self.vars[var.0];
        def.lower = lower;
        def.upper = upper;
    }

    /// Convenience constructor for an empty expression tied to this problem.
    ///
    /// Purely cosmetic: expressions are not checked against the problem until
    /// solve time.
    pub fn expr(&self) -> LinExpr {
        LinExpr::new()
    }

    /// Adds the constraint `expr <= rhs`.
    pub fn add_le(&mut self, expr: LinExpr, rhs: f64) {
        self.add_constraint(expr, ConstraintOp::Le, rhs, None);
    }

    /// Adds the constraint `expr >= rhs`.
    pub fn add_ge(&mut self, expr: LinExpr, rhs: f64) {
        self.add_constraint(expr, ConstraintOp::Ge, rhs, None);
    }

    /// Adds the constraint `expr == rhs`.
    pub fn add_eq(&mut self, expr: LinExpr, rhs: f64) {
        self.add_constraint(expr, ConstraintOp::Eq, rhs, None);
    }

    /// Adds a labelled constraint.
    pub fn add_constraint(
        &mut self,
        expr: LinExpr,
        op: ConstraintOp,
        rhs: f64,
        label: Option<String>,
    ) {
        // Fold the expression constant into the right-hand side so that the
        // solver only ever sees `a.x (op) b`.
        let constant = expr.constant_part();
        let mut expr = expr;
        expr.constant = 0.0;
        self.constraints.push(Constraint { expr, op, rhs: rhs - constant, label });
    }

    /// Sets the objective expression (interpreted according to the sense).
    pub fn set_objective(&mut self, objective: LinExpr) {
        self.objective = objective;
    }

    /// Optimisation sense.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Objective expression.
    pub fn objective(&self) -> &LinExpr {
        &self.objective
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Variable definitions, indexed by [`VarId::index`].
    pub fn vars(&self) -> &[VarDef] {
        &self.vars
    }

    /// Constraint list in insertion order.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Returns true if any variable is integer-constrained.
    pub fn is_mixed_integer(&self) -> bool {
        self.vars.iter().any(|v| v.integer)
    }

    /// Validates variable bounds and coefficient finiteness.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::InvalidBounds`] or [`LpError::NonFiniteCoefficient`]
    /// when the model is malformed, and [`LpError::UnknownVariable`] when an
    /// expression references a variable that does not belong to this problem.
    pub fn validate(&self) -> LpResult<()> {
        for v in &self.vars {
            if v.lower > v.upper || v.lower.is_nan() || v.upper.is_nan() {
                return Err(LpError::InvalidBounds {
                    name: v.name.clone(),
                    lower: v.lower,
                    upper: v.upper,
                });
            }
        }
        let n = self.vars.len();
        self.objective.validate_against(n)?;
        if !self.objective.constant_part().is_finite() {
            return Err(LpError::NonFiniteCoefficient { context: "objective constant".into() });
        }
        for (i, c) in self.constraints.iter().enumerate() {
            c.expr.validate_against(n)?;
            if !c.rhs.is_finite() {
                return Err(LpError::NonFiniteCoefficient {
                    context: format!("right-hand side of constraint {i}"),
                });
            }
        }
        Ok(())
    }

    /// Solves the problem with default options.
    ///
    /// Integer variables are honoured (branch and bound); purely continuous
    /// problems go straight to the simplex solver.
    ///
    /// # Errors
    ///
    /// Returns an error when the model is malformed, infeasible, unbounded or
    /// when solver limits are exceeded before a feasible point is found.
    pub fn solve(&self) -> LpResult<Solution> {
        self.solve_with(&SimplexOptions::default(), &MilpOptions::default())
    }

    /// Solves the problem with explicit solver options.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Problem::solve`].
    pub fn solve_with(
        &self,
        simplex_options: &SimplexOptions,
        milp_options: &MilpOptions,
    ) -> LpResult<Solution> {
        self.validate()?;
        if self.is_mixed_integer() {
            milp::solve(self, simplex_options, milp_options)
        } else {
            simplex::solve(self, simplex_options)
        }
    }

    /// Solves the continuous relaxation (integrality dropped).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Problem::solve`].
    pub fn solve_relaxation(&self, simplex_options: &SimplexOptions) -> LpResult<Solution> {
        self.validate()?;
        simplex::solve(self, simplex_options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expression_building_and_evaluation() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, 10.0);
        let y = p.add_var("y", 0.0, 10.0);
        let e = p.expr().term(2.0, x).term(3.0, y).plus(1.0);
        assert_eq!(e.evaluate(&[1.0, 2.0]), 2.0 + 6.0 + 1.0);
        let dense = e.to_dense(2).unwrap();
        assert_eq!(dense, vec![2.0, 3.0]);
    }

    #[test]
    fn duplicate_terms_are_merged_in_dense_form() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", 0.0, 1.0);
        let e = p.expr().term(1.0, x).term(2.5, x);
        assert_eq!(e.to_dense(1).unwrap(), vec![3.5]);
    }

    #[test]
    fn sparse_terms_coalesce_sort_and_drop_zeros() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", 0.0, 1.0);
        let y = p.add_var("y", 0.0, 1.0);
        let z = p.add_var("z", 0.0, 1.0);
        let e = p
            .expr()
            .term(2.0, z)
            .term(1.0, x)
            .term(-2.0, z)
            .term(0.5, y)
            .term(1.5, x);
        let terms: Vec<(VarId, f64)> = e.sparse_terms().collect();
        assert_eq!(terms, vec![(x, 2.5), (y, 0.5)]);
        // z cancelled to zero and was dropped entirely.
        assert!(terms.iter().all(|&(v, _)| v != z));
    }

    #[test]
    fn set_var_bounds_overwrites() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", 0.0, 10.0);
        p.set_var_bounds(x, 2.0, 3.0);
        assert_eq!(p.vars()[0].lower, 2.0);
        assert_eq!(p.vars()[0].upper, 3.0);
    }

    #[test]
    fn constraint_constant_folds_into_rhs() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", 0.0, 10.0);
        p.add_le(p.expr().term(1.0, x).plus(2.0), 5.0);
        assert_eq!(p.constraints()[0].rhs, 3.0);
        assert_eq!(p.constraints()[0].expr.constant_part(), 0.0);
    }

    #[test]
    fn validate_rejects_bad_bounds() {
        let mut p = Problem::new(Sense::Minimize);
        p.add_var("x", 1.0, 0.0);
        assert!(matches!(p.validate(), Err(LpError::InvalidBounds { .. })));
    }

    #[test]
    fn validate_rejects_unknown_variable() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", 0.0, 1.0);
        let mut q = Problem::new(Sense::Minimize);
        q.add_le(q.expr().term(1.0, x), 1.0);
        // `q` has zero variables, so `x` is out of range.
        assert!(matches!(q.validate(), Err(LpError::UnknownVariable { .. })));
        let _ = x;
    }

    #[test]
    fn validate_rejects_non_finite() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", 0.0, 1.0);
        p.add_le(p.expr().term(f64::NAN, x), 1.0);
        assert!(matches!(p.validate(), Err(LpError::NonFiniteCoefficient { .. })));
    }

    #[test]
    fn mixed_integer_detection() {
        let mut p = Problem::new(Sense::Minimize);
        p.add_var("x", 0.0, 1.0);
        assert!(!p.is_mixed_integer());
        p.add_bool_var("b");
        assert!(p.is_mixed_integer());
    }
}
