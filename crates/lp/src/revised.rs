//! Sparse revised simplex with implicit variable bounds and warm starts.
//!
//! This is the workhorse solver of the crate.  Compared to the retained dense
//! tableau ([`crate::simplex_dense`]) it differs in three structural ways,
//! each of which matters for the thousands of small sparse LPs the Palmed
//! pipeline generates:
//!
//! * **Sparse storage.**  The standard form is held column-major (CSC); an
//!   iteration touches `O(nnz + m²)` numbers instead of the full
//!   `rows × cols` tableau.
//! * **Implicit bounds.**  Lower/upper variable bounds are handled by the
//!   bounded-variable simplex rule: a nonbasic variable simply sits at one of
//!   its bounds (or at zero when free).  No `x <= u` rows are materialised
//!   and free variables are not split into positive/negative parts.
//! * **Factorised basis.**  The basis matrix is kept as a dense LU
//!   factorisation plus a chain of product-form eta updates, refactorised
//!   periodically.  Pivots never rewrite the constraint data.
//!
//! Feasibility is reached with an **artificial-free phase 1** that minimises
//! the total bound violation of the basic variables from whatever basis it
//! starts with — the all-slack basis on a cold start, or a caller-provided
//! [`Basis`] on a warm start.  Because phase 1 works from any basis, warm
//! starting after a right-hand-side or bound perturbation (MILP children,
//! LP2 rounds, LPAUX instruction sweeps) usually costs a handful of pivots
//! instead of a full two-phase solve.
//!
//! Pricing is Dantzig with a switch to Bland's rule after
//! [`SimplexOptions::bland_threshold`] pivots, like the dense solver.

use crate::error::{LpError, LpResult};
use crate::model::{ConstraintOp, Problem, Sense, Solution, SolveStatus};
use crate::simplex::SimplexOptions;

/// Refactorise the basis after this many eta updates.
const REFACTOR_INTERVAL: usize = 64;
/// Smallest pivot magnitude accepted without attempting a refactorisation.
const PIVOT_TOL: f64 = 1e-9;

/// Status of one standard-form column (structural variables first, then one
/// slack per row).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColStatus {
    /// In the basis.
    Basic,
    /// Nonbasic at its lower bound.
    AtLower,
    /// Nonbasic at its upper bound.
    AtUpper,
    /// Nonbasic free variable, resting at zero.
    Free,
}

/// A snapshot of the simplex basis, reusable across related solves.
///
/// A basis is valid for any problem with the same number of variables and
/// constraints; the matrix values, bounds, right-hand sides and objective may
/// all differ.  [`solve_with_warm_start`] falls back to a cold start when the
/// dimensions do not match or the proposed basis is singular, so stale
/// handles are safe to pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Basis {
    status: Vec<ColStatus>,
    num_vars: usize,
    num_constraints: usize,
}

impl Basis {
    /// Number of structural variables the basis was captured for.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of constraints the basis was captured for.
    pub fn num_constraints(&self) -> usize {
        self.num_constraints
    }

    /// Whether this basis can seed a solve of `problem`.
    pub fn matches(&self, problem: &Problem) -> bool {
        self.num_vars == problem.num_vars()
            && self.num_constraints == problem.num_constraints()
    }
}

/// Result of [`solve_with_warm_start`]: the solution plus restart metadata.
#[derive(Debug, Clone)]
pub struct SolveInfo {
    /// The optimal solution, mapped back onto the problem variables.
    pub solution: Solution,
    /// The final basis, reusable to warm-start a related solve.
    pub basis: Basis,
    /// Number of simplex iterations (pivots and bound flips) performed.
    pub iterations: usize,
}

/// Sparse left-looking LU factorisation with partial pivoting
/// (Gilbert–Peierls style, column-major storage).
///
/// Column `j` of the input becomes pivot position `j`; elimination sweeps the
/// previously pivoted positions in order, touching only non-zero entries, so
/// factorisation costs `O(k² index scans + flops(fill))` and each solve costs
/// `O(nnz(L) + nnz(U))`.  On the band-structured bases Palmed-style LPs
/// produce, fill-in is tiny and solves run orders of magnitude below the
/// dense `O(k²)` bound.
struct SparseLu {
    k: usize,
    /// Strictly-sub-diagonal part of column `t`, entries `(original row,
    /// multiplier)`; the unit diagonal is implicit.
    l_cols: Vec<Vec<(usize, f64)>>,
    /// Above-diagonal part of column `t`, entries `(pivot position < t,
    /// value)`.
    u_cols: Vec<Vec<(usize, f64)>>,
    /// Diagonal of `U` per pivot position.
    u_diag: Vec<f64>,
    /// `p[t]` = original row pivoted at position `t`.
    p: Vec<usize>,
    /// Inverse of `p`.
    pinv: Vec<usize>,
}

impl SparseLu {
    /// Factorises the `k x k` matrix given as sparse columns.
    fn factorize(k: usize, columns: &[Vec<(usize, f64)>]) -> Option<SparseLu> {
        debug_assert_eq!(columns.len(), k);
        let mut lu = SparseLu {
            k,
            l_cols: Vec::with_capacity(k),
            u_cols: Vec::with_capacity(k),
            u_diag: Vec::with_capacity(k),
            p: Vec::with_capacity(k),
            pinv: vec![usize::MAX; k],
        };
        let mut x = vec![0.0; k];
        let mut touched: Vec<usize> = Vec::new();
        for (j, column) in columns.iter().enumerate() {
            let _ = j;
            for &(r, v) in column {
                if x[r] == 0.0 {
                    touched.push(r);
                }
                x[r] += v;
            }
            // Eliminate against already-pivoted positions in order.
            let mut u_col = Vec::new();
            for t in 0..j {
                let xv = x[lu.p[t]];
                if xv == 0.0 {
                    continue;
                }
                u_col.push((t, xv));
                for &(r, lv) in &lu.l_cols[t] {
                    if x[r] == 0.0 {
                        touched.push(r);
                    }
                    x[r] -= lv * xv;
                }
            }
            // Partial pivoting among the unpivoted rows.
            let mut pr = usize::MAX;
            let mut best = 0.0;
            for &r in &touched {
                if lu.pinv[r] == usize::MAX && x[r].abs() > best {
                    best = x[r].abs();
                    pr = r;
                }
            }
            if best < 1e-12 {
                return None;
            }
            let d = x[pr];
            let mut l_col = Vec::new();
            for &r in &touched {
                if lu.pinv[r] == usize::MAX && r != pr && x[r] != 0.0 {
                    l_col.push((r, x[r] / d));
                }
            }
            lu.p.push(pr);
            lu.pinv[pr] = j;
            lu.u_diag.push(d);
            lu.u_cols.push(u_col);
            lu.l_cols.push(l_col);
            for &r in &touched {
                x[r] = 0.0;
            }
            touched.clear();
        }
        Some(lu)
    }

    /// Solves `B x = v` (`v` indexed by row, result indexed by column).
    fn solve(&self, v: &[f64]) -> Vec<f64> {
        let k = self.k;
        let mut work = v.to_vec();
        let mut z = vec![0.0; k];
        for t in 0..k {
            let zt = work[self.p[t]];
            z[t] = zt;
            if zt != 0.0 {
                for &(r, lv) in &self.l_cols[t] {
                    work[r] -= lv * zt;
                }
            }
        }
        for s in (0..k).rev() {
            let xs = z[s] / self.u_diag[s];
            z[s] = xs;
            if xs != 0.0 {
                for &(t, uv) in &self.u_cols[s] {
                    z[t] -= uv * xs;
                }
            }
        }
        z
    }

    /// Solves `Bᵀ y = c` (`c` indexed by column, result indexed by row).
    fn solve_transpose(&self, c: &[f64]) -> Vec<f64> {
        let k = self.k;
        // Uᵀ w = c, ascending positions.
        let mut w = vec![0.0; k];
        for t in 0..k {
            let mut acc = c[t];
            for &(s, uv) in &self.u_cols[t] {
                acc -= uv * w[s];
            }
            w[t] = acc / self.u_diag[t];
        }
        // Lᵀ u = w, descending positions (unit diagonal).
        for t in (0..k).rev() {
            let mut acc = w[t];
            for &(r, lv) in &self.l_cols[t] {
                acc -= lv * w[self.pinv[r]];
            }
            w[t] = acc;
        }
        // Undo the row permutation.
        let mut y = vec![0.0; k];
        for t in 0..k {
            y[self.p[t]] = w[t];
        }
        y
    }
}

/// Factorisation of the basis that exploits singleton columns.
///
/// In Palmed's LPs (and in bounded LPs generally) a large share of the basis
/// consists of slack columns — unit vectors.  Each basic column with a single
/// non-zero pivots its row at zero cost; only the remaining *kernel* block
/// (general columns × uncovered rows, size `k × k` with `k ≤ m`, often
/// `k ≪ m`) needs a dense LU.  Solves then cost `O(k² + nnz)` instead of
/// `O(m²)`, and refactorisation `O(k³)` instead of `O(m³)` — the difference
/// between the revised simplex winning and losing on slack-heavy instances.
struct BasisFactors {
    /// `(basis position, row, value)` of every singleton basic column.
    singletons: Vec<(usize, usize, f64)>,
    /// Basis positions of the kernel (non-singleton) columns, in LU order.
    kernel_pos: Vec<usize>,
    /// Original row of each compressed kernel row.
    kernel_rows: Vec<usize>,
    /// Per singleton: the kernel columns' entries in its pivoted row, as
    /// `(kernel column index, value)`.
    sing_rows: Vec<Vec<(usize, f64)>>,
    /// Sparse LU of the `k × k` kernel block.
    lu: SparseLu,
}

impl BasisFactors {
    fn empty() -> BasisFactors {
        BasisFactors {
            singletons: Vec::new(),
            kernel_pos: Vec::new(),
            kernel_rows: Vec::new(),
            sing_rows: Vec::new(),
            lu: SparseLu {
                k: 0,
                l_cols: Vec::new(),
                u_cols: Vec::new(),
                u_diag: Vec::new(),
                p: Vec::new(),
                pinv: Vec::new(),
            },
        }
    }

    /// Factorises the basis given as sparse columns (indexed by position).
    fn factorize(m: usize, columns: &[Vec<(usize, f64)>]) -> Option<BasisFactors> {
        debug_assert_eq!(columns.len(), m);
        // Singleton pass: basic columns with one non-zero pivot their row.
        let mut singleton_of_row: Vec<Option<usize>> = vec![None; m];
        let mut singletons = Vec::new();
        let mut kernel_pos = Vec::new();
        for (pos, col) in columns.iter().enumerate() {
            match col.as_slice() {
                &[(row, value)] if value.abs() > 1e-12 && singleton_of_row[row].is_none() => {
                    singleton_of_row[row] = Some(singletons.len());
                    singletons.push((pos, row, value));
                }
                _ => kernel_pos.push(pos),
            }
        }
        // Compress the uncovered rows.
        let mut row_comp: Vec<Option<usize>> = vec![None; m];
        let mut kernel_rows = Vec::new();
        for row in 0..m {
            if singleton_of_row[row].is_none() {
                row_comp[row] = Some(kernel_rows.len());
                kernel_rows.push(row);
            }
        }
        let k = kernel_rows.len();
        if kernel_pos.len() != k {
            return None;
        }
        // Kernel block and the singleton-row coupling entries.
        let mut sing_rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); singletons.len()];
        let mut kernel_cols: Vec<Vec<(usize, f64)>> = Vec::with_capacity(k);
        for (ci, &pos) in kernel_pos.iter().enumerate() {
            let mut compressed = Vec::with_capacity(columns[pos].len());
            for &(row, value) in &columns[pos] {
                match row_comp[row] {
                    Some(cr) => compressed.push((cr, value)),
                    None => {
                        let si = singleton_of_row[row].expect("covered row has a singleton");
                        sing_rows[si].push((ci, value));
                    }
                }
            }
            kernel_cols.push(compressed);
        }
        let lu = SparseLu::factorize(k, &kernel_cols)?;
        Some(BasisFactors { singletons, kernel_pos, kernel_rows, sing_rows, lu })
    }

    /// Solves `B x = v`; the result is indexed by basis *position*.
    fn solve(&self, v: &[f64]) -> Vec<f64> {
        let rhs: Vec<f64> = self.kernel_rows.iter().map(|&r| v[r]).collect();
        let x_kernel = self.lu.solve(&rhs);
        let mut x = vec![0.0; v.len()];
        for (ci, &pos) in self.kernel_pos.iter().enumerate() {
            x[pos] = x_kernel[ci];
        }
        for (si, &(pos, row, value)) in self.singletons.iter().enumerate() {
            let mut acc = v[row];
            for &(ci, a) in &self.sing_rows[si] {
                acc -= a * x_kernel[ci];
            }
            x[pos] = acc / value;
        }
        x
    }

    /// Solves `Bᵀ y = c` (`c` indexed by position); result indexed by row.
    fn solve_transpose(&self, c: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; c.len()];
        for &(pos, row, value) in &self.singletons {
            y[row] = c[pos] / value;
        }
        let mut rhs: Vec<f64> = self.kernel_pos.iter().map(|&pos| c[pos]).collect();
        for (si, &(_, row, _)) in self.singletons.iter().enumerate() {
            let y_row = y[row];
            if y_row != 0.0 {
                for &(ci, a) in &self.sing_rows[si] {
                    rhs[ci] -= a * y_row;
                }
            }
        }
        let y_kernel = self.lu.solve_transpose(&rhs);
        for (cr, &row) in self.kernel_rows.iter().enumerate() {
            y[row] = y_kernel[cr];
        }
        y
    }
}

/// Product-form eta update: after a pivot at basis position `pos` with
/// entering column spike `w = B⁻¹ aq`, the new inverse is `E⁻¹ B⁻¹`.
/// Stored sparsely — the spike of a sparse basis has few non-zeros, and the
/// eta chain is applied twice per iteration (FTRAN and BTRAN).
struct Eta {
    pos: usize,
    /// Spike value at `pos`.
    pivot: f64,
    /// Remaining non-zeros of the spike, `(position, value)`, `pos` excluded.
    entries: Vec<(usize, f64)>,
}

impl Eta {
    fn from_spike(pos: usize, w: &[f64]) -> Eta {
        let entries = w
            .iter()
            .enumerate()
            .filter(|&(i, &v)| i != pos && v != 0.0)
            .map(|(i, &v)| (i, v))
            .collect();
        Eta { pos, pivot: w[pos], entries }
    }
}

/// The problem in sparse bounded standard form plus solver state.
struct Solver {
    m: usize,
    /// Total columns: structural variables then one slack per row.
    n_total: usize,
    n_struct: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<f64>,
    lower: Vec<f64>,
    upper: Vec<f64>,
    /// Minimisation costs over all columns (slacks cost 0).
    cost: Vec<f64>,
    b: Vec<f64>,
    status: Vec<ColStatus>,
    /// Column basic at each basis position.
    basis_cols: Vec<usize>,
    /// Value of the basic variable at each basis position.
    x_basic: Vec<f64>,
    factors: BasisFactors,
    etas: Vec<Eta>,
    iterations: usize,
    refactorizations: usize,
    /// True when a caller-supplied warm basis was adopted (vs falling back
    /// to a cold all-slack start).
    warm_adopted: bool,
    options: SimplexOptions,
}

enum PhaseOutcome {
    /// Phase 1: feasibility reached.  Phase 2: optimum reached.
    Done,
    /// Phase 1 only: no improving column but infeasibility remains.
    Infeasible,
    /// Phase 2 only: improving ray with no blocking bound.
    Unbounded,
}

impl Solver {
    fn build(problem: &Problem, warm: Option<&Basis>, options: &SimplexOptions) -> LpResult<Solver> {
        let n = problem.num_vars();
        let m = problem.num_constraints();
        let n_total = n + m;

        // Sparse CSC assembly: structural columns from the constraint rows,
        // then one +1 slack column per row.
        let mut entries: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        let mut b = Vec::with_capacity(m);
        let mut lower = Vec::with_capacity(n_total);
        let mut upper = Vec::with_capacity(n_total);
        for def in problem.vars() {
            lower.push(def.lower);
            upper.push(def.upper);
        }
        for (i, c) in problem.constraints().iter().enumerate() {
            for (v, coefficient) in c.expr.sparse_terms() {
                entries[v.index()].push((i, coefficient));
            }
            b.push(c.rhs);
        }
        let mut col_ptr = Vec::with_capacity(n_total + 1);
        let mut row_idx = Vec::new();
        let mut values = Vec::new();
        col_ptr.push(0);
        for col in &entries {
            for &(r, v) in col {
                row_idx.push(r);
                values.push(v);
            }
            col_ptr.push(row_idx.len());
        }
        for (i, c) in problem.constraints().iter().enumerate() {
            row_idx.push(i);
            values.push(1.0);
            col_ptr.push(row_idx.len());
            // Slack bounds encode the constraint sense: a x + s = b with
            // s >= 0 is `<=`, s <= 0 is `>=`, s = 0 is `==`.
            match c.op {
                ConstraintOp::Le => {
                    lower.push(0.0);
                    upper.push(f64::INFINITY);
                }
                ConstraintOp::Ge => {
                    lower.push(f64::NEG_INFINITY);
                    upper.push(0.0);
                }
                ConstraintOp::Eq => {
                    lower.push(0.0);
                    upper.push(0.0);
                }
            }
        }

        // Minimisation cost row (maximisation is negated).
        let maximize = problem.sense() == Sense::Maximize;
        let mut cost = vec![0.0; n_total];
        for (v, coefficient) in problem.objective().sparse_terms() {
            cost[v.index()] += if maximize { -coefficient } else { coefficient };
        }

        let mut solver = Solver {
            m,
            n_total,
            n_struct: n,
            col_ptr,
            row_idx,
            values,
            lower,
            upper,
            cost,
            b,
            status: Vec::new(),
            basis_cols: Vec::new(),
            x_basic: vec![0.0; m],
            factors: BasisFactors::empty(),
            etas: Vec::new(),
            iterations: 0,
            refactorizations: 0,
            warm_adopted: false,
            options: options.clone(),
        };

        if let Some(basis) = warm {
            if basis.num_vars == n && basis.num_constraints == m {
                solver.status = basis.status.clone();
                solver.normalize_nonbasic_statuses();
                let basic: Vec<usize> =
                    (0..n_total).filter(|&j| solver.status[j] == ColStatus::Basic).collect();
                if basic.len() == m {
                    solver.basis_cols = basic;
                    if solver.refactorize() {
                        solver.warm_adopted = true;
                        return Ok(solver);
                    }
                }
            }
        }
        solver.cold_start();
        Ok(solver)
    }

    /// All-slack starting basis.
    fn cold_start(&mut self) {
        let n = self.n_struct;
        self.status = (0..self.n_total)
            .map(|j| {
                if j >= n {
                    ColStatus::Basic
                } else {
                    Self::resting_status(self.lower[j], self.upper[j])
                }
            })
            .collect();
        self.basis_cols = (n..self.n_total).collect();
        let ok = self.refactorize();
        debug_assert!(ok, "the all-slack basis is the identity and always factorises");
    }

    fn resting_status(lower: f64, upper: f64) -> ColStatus {
        if lower.is_finite() {
            ColStatus::AtLower
        } else if upper.is_finite() {
            ColStatus::AtUpper
        } else {
            ColStatus::Free
        }
    }

    /// Repairs nonbasic statuses pointing at bounds that no longer exist
    /// (bounds may have changed since the basis was captured).
    fn normalize_nonbasic_statuses(&mut self) {
        for j in 0..self.n_total.min(self.status.len()) {
            let status = self.status[j];
            let fixed = match status {
                ColStatus::AtLower if !self.lower[j].is_finite() => true,
                ColStatus::AtUpper if !self.upper[j].is_finite() => true,
                ColStatus::Free if self.lower[j].is_finite() || self.upper[j].is_finite() => true,
                _ => false,
            };
            if fixed {
                self.status[j] = Self::resting_status(self.lower[j], self.upper[j]);
            }
        }
    }

    #[inline]
    fn col(&self, j: usize) -> (&[usize], &[f64]) {
        let (s, e) = (self.col_ptr[j], self.col_ptr[j + 1]);
        (&self.row_idx[s..e], &self.values[s..e])
    }

    fn nonbasic_value(&self, j: usize) -> f64 {
        match self.status[j] {
            ColStatus::AtLower => self.lower[j],
            ColStatus::AtUpper => self.upper[j],
            ColStatus::Free => 0.0,
            ColStatus::Basic => unreachable!("basic column has no resting value"),
        }
    }

    /// Rebuilds the basis factorisation and recomputes the basic values from
    /// scratch.  Returns false if the basis is singular.
    fn refactorize(&mut self) -> bool {
        self.refactorizations += 1;
        let columns: Vec<Vec<(usize, f64)>> = self
            .basis_cols
            .iter()
            .map(|&j| {
                let (rows, vals) = self.col(j);
                rows.iter().copied().zip(vals.iter().copied()).collect()
            })
            .collect();
        match BasisFactors::factorize(self.m, &columns) {
            Some(factors) => {
                self.factors = factors;
                self.etas.clear();
                self.recompute_x_basic();
                true
            }
            None => false,
        }
    }

    fn recompute_x_basic(&mut self) {
        let mut rhs = self.b.clone();
        for j in 0..self.n_total {
            if self.status[j] == ColStatus::Basic {
                continue;
            }
            let value = self.nonbasic_value(j);
            if value != 0.0 {
                let (rows, vals) = self.col(j);
                for (&r, &v) in rows.iter().zip(vals) {
                    rhs[r] -= v * value;
                }
            }
        }
        self.x_basic = self.ftran(&rhs);
    }

    /// `B⁻¹ v` through the basis factors and the eta chain.
    fn ftran(&self, v: &[f64]) -> Vec<f64> {
        let mut x = self.factors.solve(v);
        for eta in &self.etas {
            let t = x[eta.pos] / eta.pivot;
            if t != 0.0 {
                for &(i, wi) in &eta.entries {
                    x[i] -= wi * t;
                }
            }
            x[eta.pos] = t;
        }
        x
    }

    /// `B⁻ᵀ c` through the eta chain (reverse) and the basis factors.
    fn btran(&self, c: &[f64]) -> Vec<f64> {
        let mut y = c.to_vec();
        for eta in self.etas.iter().rev() {
            let mut acc = y[eta.pos];
            for &(i, wi) in &eta.entries {
                acc -= wi * y[i];
            }
            y[eta.pos] = acc / eta.pivot;
        }
        self.factors.solve_transpose(&y)
    }

    /// Sparse dot product of column `j` with dense `y`.
    #[inline]
    fn col_dot(&self, j: usize, y: &[f64]) -> f64 {
        let (rows, vals) = self.col(j);
        let mut acc = 0.0;
        for (&r, &v) in rows.iter().zip(vals) {
            acc += v * y[r];
        }
        acc
    }

    fn feasibility_tolerance(&self) -> f64 {
        self.options.tolerance.max(1e-9)
    }

    /// Total bound violation of the basic variables.
    fn infeasibility(&self) -> f64 {
        let tol = self.feasibility_tolerance();
        let mut total = 0.0;
        for (p, &j) in self.basis_cols.iter().enumerate() {
            let x = self.x_basic[p];
            if x < self.lower[j] - tol {
                total += self.lower[j] - x;
            } else if x > self.upper[j] + tol {
                total += x - self.upper[j];
            }
        }
        total
    }

    /// One simplex phase.  `phase1` selects the dynamic infeasibility costs;
    /// otherwise the stored cost row is used.
    fn run_phase(&mut self, phase1: bool) -> LpResult<PhaseOutcome> {
        loop {
            if self.iterations >= self.options.max_iterations {
                return Err(LpError::IterationLimit { iterations: self.iterations });
            }
            if self.etas.len() >= REFACTOR_INTERVAL && !self.refactorize() {
                return Err(LpError::IterationLimit { iterations: self.iterations });
            }
            let tol = self.options.tolerance;
            let feas = self.feasibility_tolerance();

            // Cost of the basic variables for this phase.
            let mut d_basic = vec![0.0; self.m];
            if phase1 {
                let mut any = false;
                for (p, &j) in self.basis_cols.iter().enumerate() {
                    let x = self.x_basic[p];
                    if x < self.lower[j] - feas {
                        d_basic[p] = -1.0;
                        any = true;
                    } else if x > self.upper[j] + feas {
                        d_basic[p] = 1.0;
                        any = true;
                    }
                }
                if !any {
                    return Ok(PhaseOutcome::Done);
                }
            } else {
                for (p, &j) in self.basis_cols.iter().enumerate() {
                    d_basic[p] = self.cost[j];
                }
            }

            let y = self.btran(&d_basic);

            // Pricing: choose the entering column and its direction.
            let use_bland = self.iterations >= self.options.bland_threshold;
            let mut entering: Option<(usize, f64)> = None; // (column, direction)
            let mut best_violation = tol;
            for j in 0..self.n_total {
                let status = self.status[j];
                if status == ColStatus::Basic || self.lower[j] == self.upper[j] {
                    continue;
                }
                let z = if phase1 { -self.col_dot(j, &y) } else { self.cost[j] - self.col_dot(j, &y) };
                let candidate = match status {
                    ColStatus::AtLower if z < -tol => Some((j, 1.0, -z)),
                    ColStatus::AtUpper if z > tol => Some((j, -1.0, z)),
                    ColStatus::Free if z.abs() > tol => Some((j, if z < 0.0 { 1.0 } else { -1.0 }, z.abs())),
                    _ => None,
                };
                if let Some((j, dir, violation)) = candidate {
                    if use_bland {
                        entering = Some((j, dir));
                        break;
                    }
                    if violation > best_violation {
                        best_violation = violation;
                        entering = Some((j, dir));
                    }
                }
            }
            let Some((q, dir)) = entering else {
                return Ok(if phase1 && self.infeasibility() > self.options.tolerance.max(1e-7) {
                    PhaseOutcome::Infeasible
                } else {
                    PhaseOutcome::Done
                });
            };

            // Spike of the entering column.
            let mut aq = vec![0.0; self.m];
            {
                let (rows, vals) = self.col(q);
                for (&r, &v) in rows.iter().zip(vals) {
                    aq[r] = v;
                }
            }
            let w = self.ftran(&aq);

            // Ratio test.  Basic variable p changes at rate `-dir * w[p]` per
            // unit of entering movement.  In phase 1, variables outside their
            // bounds block at the first bound they cross on the way back to
            // feasibility.
            #[derive(Clone, Copy)]
            enum Blocker {
                BasicAtLower(usize),
                BasicAtUpper(usize),
                OwnBound,
            }
            let mut t_star = f64::INFINITY;
            let mut blockers: Vec<(f64, Blocker, f64)> = Vec::new(); // (ratio, blocker, |w|)
            for (p, &wp) in w.iter().enumerate() {
                let rate = -dir * wp;
                if rate.abs() <= PIVOT_TOL {
                    continue;
                }
                let j = self.basis_cols[p];
                let x = self.x_basic[p];
                let (ratio, blocker) = if rate > 0.0 {
                    if phase1 && x < self.lower[j] - feas {
                        // Rising back towards its violated lower bound.
                        ((self.lower[j] - x) / rate, Blocker::BasicAtLower(p))
                    } else if self.upper[j].is_finite() && x <= self.upper[j] + feas {
                        ((self.upper[j] - x) / rate, Blocker::BasicAtUpper(p))
                    } else {
                        continue;
                    }
                } else {
                    // rate < 0: the basic variable decreases.
                    if phase1 && x > self.upper[j] + feas {
                        ((self.upper[j] - x) / rate, Blocker::BasicAtUpper(p))
                    } else if self.lower[j].is_finite() && x >= self.lower[j] - feas {
                        ((self.lower[j] - x) / rate, Blocker::BasicAtLower(p))
                    } else {
                        continue;
                    }
                };
                let ratio = ratio.max(0.0);
                if ratio < t_star + feas {
                    t_star = t_star.min(ratio);
                    blockers.push((ratio, blocker, w[p].abs()));
                }
            }
            // The entering variable's own opposite bound.
            let span = self.upper[q] - self.lower[q];
            if self.status[q] != ColStatus::Free && span.is_finite() && span < t_star + feas {
                t_star = t_star.min(span);
                blockers.push((span, Blocker::OwnBound, f64::INFINITY));
            }

            if t_star.is_infinite() {
                if phase1 {
                    // A negative phase-1 direction with no breakpoint cannot
                    // happen exactly (infeasibility is bounded below by 0);
                    // numerically, treat it as a failed solve.
                    return Err(LpError::IterationLimit { iterations: self.iterations });
                }
                return Ok(PhaseOutcome::Unbounded);
            }

            // Among blockers within tolerance of the best ratio, prefer the
            // largest pivot magnitude (stability); under Bland's rule, the
            // lowest column index (termination).
            let chosen = blockers
                .iter()
                .filter(|&&(ratio, _, _)| ratio <= t_star + feas)
                .min_by(|&&(_, a, wa), &&(_, b, wb)| {
                    if use_bland {
                        let idx = |blk: Blocker| match blk {
                            Blocker::OwnBound => q,
                            Blocker::BasicAtLower(p) | Blocker::BasicAtUpper(p) => {
                                self.basis_cols[p]
                            }
                        };
                        idx(a).cmp(&idx(b))
                    } else {
                        wb.partial_cmp(&wa).unwrap_or(std::cmp::Ordering::Equal)
                    }
                })
                .map(|&(_, blocker, _)| blocker)
                .expect("t_star finite implies at least one blocker");

            // Apply the step.
            let t = t_star;
            for (p, &wp) in w.iter().enumerate() {
                if wp != 0.0 {
                    self.x_basic[p] -= dir * t * wp;
                }
            }
            match chosen {
                Blocker::OwnBound => {
                    // Bound flip: the entering variable crosses to its other
                    // bound; the basis is unchanged.
                    self.status[q] = match self.status[q] {
                        ColStatus::AtLower => ColStatus::AtUpper,
                        ColStatus::AtUpper => ColStatus::AtLower,
                        other => other,
                    };
                }
                Blocker::BasicAtLower(p) | Blocker::BasicAtUpper(p) => {
                    let leaving = self.basis_cols[p];
                    let entering_value = self.nonbasic_value(q) + dir * t;
                    self.status[leaving] = match chosen {
                        Blocker::BasicAtLower(_) => ColStatus::AtLower,
                        _ => ColStatus::AtUpper,
                    };
                    self.status[q] = ColStatus::Basic;
                    self.basis_cols[p] = q;
                    self.x_basic[p] = entering_value;
                    if w[p].abs() < PIVOT_TOL {
                        // Too small to update stably: rebuild the factors
                        // around the new basis instead of chaining an eta.
                        if !self.refactorize() {
                            return Err(LpError::IterationLimit { iterations: self.iterations });
                        }
                    } else {
                        self.etas.push(Eta::from_spike(p, &w));
                    }
                }
            }
            self.iterations += 1;
        }
    }

    fn capture_basis(&self) -> Basis {
        Basis {
            status: self.status.clone(),
            num_vars: self.n_struct,
            num_constraints: self.m,
        }
    }

    fn extract_solution(&self, problem: &Problem) -> Solution {
        let mut values = vec![0.0; self.n_struct];
        for (j, value) in values.iter_mut().enumerate() {
            *value = match self.status[j] {
                ColStatus::Basic => {
                    let p = self
                        .basis_cols
                        .iter()
                        .position(|&c| c == j)
                        .expect("basic column present in basis");
                    self.x_basic[p]
                }
                _ => self.nonbasic_value(j),
            };
        }
        let objective = problem.objective().evaluate(&values);
        Solution { values, objective, status: SolveStatus::Optimal }
    }
}

/// Solves the continuous LP with the sparse revised simplex (cold start).
///
/// # Errors
///
/// Returns [`LpError::Infeasible`], [`LpError::Unbounded`] or
/// [`LpError::IterationLimit`] as appropriate, and the model-validation
/// errors of [`Problem::validate`] for malformed problems.
pub fn solve(problem: &Problem, options: &SimplexOptions) -> LpResult<Solution> {
    solve_with_warm_start(problem, options, None).map(|info| info.solution)
}

/// Solves the continuous LP, optionally seeding the simplex with a [`Basis`]
/// captured from a related solve.
///
/// Warm starting never changes the result — only the number of iterations:
/// a mismatched or singular basis silently degrades to a cold start.
///
/// # Errors
///
/// Returns [`LpError::Infeasible`], [`LpError::Unbounded`] or
/// [`LpError::IterationLimit`] as appropriate, and the model-validation
/// errors of [`Problem::validate`] for malformed problems (this entry point
/// is callable directly, so it cannot rely on [`Problem::solve`] having
/// validated already; the check is O(nnz) and negligible next to a solve).
pub fn solve_with_warm_start(
    problem: &Problem,
    options: &SimplexOptions,
    warm: Option<&Basis>,
) -> LpResult<SolveInfo> {
    let result = solve_instrumented(problem, options, warm);
    if result.is_err() {
        palmed_obs::counter!("lp.simplex.failures").inc();
    }
    result
}

fn solve_instrumented(
    problem: &Problem,
    options: &SimplexOptions,
    warm: Option<&Basis>,
) -> LpResult<SolveInfo> {
    problem.validate()?;
    let mut solver = Solver::build(problem, warm, options)?;
    palmed_obs::counter!("lp.simplex.solves").inc();
    if warm.is_some() {
        if solver.warm_adopted {
            palmed_obs::counter!("lp.simplex.warm_start.hits").inc();
        } else {
            palmed_obs::counter!("lp.simplex.warm_start.misses").inc();
        }
    }
    if !solver.warm_adopted {
        palmed_obs::counter!("lp.simplex.cold_starts").inc();
    }

    let phases = run_phases(&mut solver);
    // Pivot and refactorization totals are recorded even when the solve
    // errors out — iteration-limit blowups are exactly what the counters
    // exist to surface.
    palmed_obs::counter!("lp.simplex.iterations").add(solver.iterations as u64);
    palmed_obs::counter!("lp.simplex.refactorizations").add(solver.refactorizations as u64);
    phases?;

    Ok(SolveInfo {
        solution: solver.extract_solution(problem),
        basis: solver.capture_basis(),
        iterations: solver.iterations,
    })
}

fn run_phases(solver: &mut Solver) -> LpResult<()> {
    match solver.run_phase(true)? {
        PhaseOutcome::Infeasible => return Err(LpError::Infeasible),
        PhaseOutcome::Unbounded => unreachable!("phase 1 never reports unbounded"),
        PhaseOutcome::Done => {}
    }
    match solver.run_phase(false)? {
        PhaseOutcome::Unbounded => return Err(LpError::Unbounded),
        PhaseOutcome::Infeasible => unreachable!("phase 2 never reports infeasible"),
        PhaseOutcome::Done => {}
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Problem, Sense};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    fn options() -> SimplexOptions {
        SimplexOptions::default()
    }

    #[test]
    fn simple_maximization() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, f64::INFINITY);
        let y = p.add_var("y", 0.0, f64::INFINITY);
        p.add_le(p.expr().term(1.0, x), 4.0);
        p.add_le(p.expr().term(2.0, y), 12.0);
        p.add_le(p.expr().term(3.0, x).term(2.0, y), 18.0);
        p.set_objective(p.expr().term(3.0, x).term(5.0, y));
        let sol = solve(&p, &options()).unwrap();
        assert_close(sol.objective, 36.0);
        assert_close(sol[x], 2.0);
        assert_close(sol[y], 6.0);
    }

    #[test]
    fn bounds_are_implicit_no_extra_rows_needed() {
        // max x + 2y with x in [1, 3], y in [-2, 2], x + y <= 4.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 1.0, 3.0);
        let y = p.add_var("y", -2.0, 2.0);
        p.add_le(p.expr().term(1.0, x).term(1.0, y), 4.0);
        p.set_objective(p.expr().term(1.0, x).term(2.0, y));
        let sol = solve(&p, &options()).unwrap();
        assert_close(sol[y], 2.0);
        assert_close(sol[x], 2.0);
        assert_close(sol.objective, 6.0);
    }

    #[test]
    fn free_variables_are_not_split() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", f64::NEG_INFINITY, f64::INFINITY);
        p.add_ge(p.expr().term(1.0, x), -5.0);
        p.set_objective(p.expr().term(1.0, x));
        let sol = solve(&p, &options()).unwrap();
        assert_close(sol[x], -5.0);
    }

    #[test]
    fn negative_bounds_and_equalities() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", -10.0, 10.0);
        let y = p.add_var("y", -10.0, 10.0);
        p.add_eq(p.expr().term(1.0, x).term(1.0, y), 10.0);
        p.add_eq(p.expr().term(1.0, x).term(-1.0, y), 2.0);
        p.set_objective(p.expr().term(2.0, x).term(3.0, y));
        let sol = solve(&p, &options()).unwrap();
        assert_close(sol[x], 6.0);
        assert_close(sol[y], 4.0);
        assert_close(sol.objective, 24.0);
    }

    #[test]
    fn infeasible_detected() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", 0.0, 1.0);
        p.add_ge(p.expr().term(1.0, x), 2.0);
        p.set_objective(p.expr().term(1.0, x));
        assert_eq!(solve(&p, &options()).unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, f64::INFINITY);
        p.set_objective(p.expr().term(1.0, x));
        assert_eq!(solve(&p, &options()).unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn malformed_problems_error_instead_of_panicking() {
        // A VarId from another problem must surface as UnknownVariable even
        // through the direct (non-`Problem::solve`) entry points.
        let mut other = Problem::new(Sense::Minimize);
        let _ = other.add_var("f", 0.0, 1.0);
        // Index 1: out of range for the 1-variable problem below.
        let foreign = other.add_var("g", 0.0, 1.0);
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", 0.0, 1.0);
        p.add_le(p.expr().term(1.0, x).term(1.0, foreign), 1.0);
        let foreign_err = solve(&p, &options());
        assert!(matches!(foreign_err, Err(LpError::UnknownVariable { .. })), "{foreign_err:?}");

        let mut q = Problem::new(Sense::Minimize);
        let y = q.add_var("y", 0.0, 1.0);
        q.add_le(q.expr().term(f64::NAN, y), 1.0);
        let nan_err = solve_with_warm_start(&q, &options(), None);
        assert!(matches!(nan_err, Err(LpError::NonFiniteCoefficient { .. })));
    }

    #[test]
    fn fixed_variables_are_respected() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 2.5, 2.5);
        let y = p.add_var("y", 0.0, 10.0);
        p.add_le(p.expr().term(1.0, x).term(1.0, y), 5.0);
        p.set_objective(p.expr().term(1.0, x).term(1.0, y));
        let sol = solve(&p, &options()).unwrap();
        assert_close(sol[x], 2.5);
        assert_close(sol[y], 2.5);
    }

    #[test]
    fn degenerate_problem_terminates() {
        let mut p = Problem::new(Sense::Maximize);
        let x1 = p.add_var("x1", 0.0, f64::INFINITY);
        let x2 = p.add_var("x2", 0.0, f64::INFINITY);
        let x3 = p.add_var("x3", 0.0, f64::INFINITY);
        p.add_le(p.expr().term(0.5, x1).term(-5.5, x2).term(-2.5, x3), 0.0);
        p.add_le(p.expr().term(0.5, x1).term(-1.5, x2).term(-0.5, x3), 0.0);
        p.add_le(p.expr().term(1.0, x1), 1.0);
        p.set_objective(p.expr().term(10.0, x1).term(-57.0, x2).term(-9.0, x3));
        let sol = solve(&p, &options()).unwrap();
        assert_close(sol.objective, 1.0);
    }

    #[test]
    fn objective_constant_is_included() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", 1.0, 10.0);
        p.set_objective(p.expr().term(2.0, x).plus(7.0));
        let sol = solve(&p, &options()).unwrap();
        assert_close(sol.objective, 9.0);
    }

    fn band_lp(n: usize, rhs_bump: f64) -> Problem {
        let mut p = Problem::new(Sense::Maximize);
        let vars: Vec<_> = (0..n).map(|i| p.add_var(format!("x{i}"), 0.0, 2.0)).collect();
        for i in 0..n.saturating_sub(2) {
            let row = p
                .expr()
                .term(1.0, vars[i])
                .term(1.0, vars[i + 1])
                .term(1.0, vars[i + 2]);
            p.add_le(row, 2.5 + (i % 3) as f64 + rhs_bump);
        }
        let mut obj = p.expr();
        for (i, &v) in vars.iter().enumerate() {
            obj.add_term(1.0 + (i % 5) as f64 * 0.25, v);
        }
        p.set_objective(obj);
        p
    }

    #[test]
    fn warm_start_on_perturbed_rhs_pivots_less() {
        let cold_problem = band_lp(40, 0.0);
        let cold = solve_with_warm_start(&cold_problem, &options(), None).unwrap();
        assert!(cold.iterations > 0);

        let perturbed = band_lp(40, 0.125);
        let warm = solve_with_warm_start(&perturbed, &options(), Some(&cold.basis)).unwrap();
        let re_cold = solve_with_warm_start(&perturbed, &options(), None).unwrap();
        assert_close(warm.solution.objective, re_cold.solution.objective);
        assert!(
            warm.iterations < re_cold.iterations,
            "warm start must pivot less: warm {} vs cold {}",
            warm.iterations,
            re_cold.iterations
        );
    }

    #[test]
    fn warm_start_on_identical_problem_is_nearly_free() {
        let problem = band_lp(32, 0.0);
        let first = solve_with_warm_start(&problem, &options(), None).unwrap();
        let again = solve_with_warm_start(&problem, &options(), Some(&first.basis)).unwrap();
        assert_close(first.solution.objective, again.solution.objective);
        assert!(again.iterations <= 2, "re-solve took {} iterations", again.iterations);
    }

    #[test]
    fn stale_basis_falls_back_to_cold_start() {
        let small = band_lp(8, 0.0);
        let info = solve_with_warm_start(&small, &options(), None).unwrap();
        let bigger = band_lp(16, 0.0);
        // Mismatched dimensions: must still solve correctly.
        let warm = solve_with_warm_start(&bigger, &options(), Some(&info.basis)).unwrap();
        let cold = solve_with_warm_start(&bigger, &options(), None).unwrap();
        assert_close(warm.solution.objective, cold.solution.objective);
    }

    type ProblemBuilder = fn(&mut Problem);

    #[test]
    fn agrees_with_dense_solver_on_textbook_problems() {
        let cases: [(Sense, ProblemBuilder); 2] = [
            (Sense::Maximize, |p: &mut Problem| {
                let x = p.add_var("x", 0.0, 3.0);
                let y = p.add_var("y", 0.0, 2.0);
                p.add_le(p.expr().term(1.0, x).term(1.0, y), 4.0);
                p.set_objective(p.expr().term(1.0, x).term(2.0, y));
            }),
            (Sense::Minimize, |p: &mut Problem| {
                let x = p.add_var("x", 0.0, f64::INFINITY);
                let y = p.add_var("y", 0.0, f64::INFINITY);
                p.add_ge(p.expr().term(1.0, x).term(2.0, y), 4.0);
                p.add_ge(p.expr().term(3.0, x).term(1.0, y), 6.0);
                p.set_objective(p.expr().term(1.0, x).term(1.0, y));
            }),
        ];
        for (sense, build) in cases {
            let mut p = Problem::new(sense);
            build(&mut p);
            let revised = solve(&p, &options()).unwrap();
            let dense = crate::simplex_dense::solve(&p, &options()).unwrap();
            assert_close(revised.objective, dense.objective);
        }
    }
}
