//! Mixed-integer linear programming by branch and bound.
//!
//! Palmed's LP1 ("shape of the core mapping") is an integer program over 0/1
//! resource-usage indicators.  The instances are small (tens of binaries), so
//! a straightforward depth-first branch and bound over the simplex relaxation
//! is both exact and fast.

use crate::error::{LpError, LpResult};
use crate::model::{Problem, Sense, Solution, SolveStatus};
use crate::revised::{self, Basis};
use crate::simplex::SimplexOptions;
use crate::INT_EPS;

/// Options controlling the branch-and-bound search.
#[derive(Debug, Clone, PartialEq)]
pub struct MilpOptions {
    /// Maximum number of explored branch-and-bound nodes.
    pub max_nodes: usize,
    /// Absolute optimality gap: the search stops when the best bound is
    /// within this distance of the incumbent.
    pub absolute_gap: f64,
    /// If true, return the incumbent (with [`SolveStatus::Feasible`]) instead
    /// of an error when the node limit is reached and an incumbent exists.
    pub accept_incumbent_on_limit: bool,
}

impl Default for MilpOptions {
    fn default() -> Self {
        MilpOptions { max_nodes: 200_000, absolute_gap: 1e-6, accept_incumbent_on_limit: true }
    }
}

/// One branch-and-bound node: a set of tightened variable bounds plus the
/// basis its parent's relaxation ended on (the warm-start seed).
#[derive(Debug, Clone)]
struct Node {
    bounds: Vec<(usize, f64, f64)>,
    depth: usize,
    parent_basis: Option<Basis>,
}

/// Applies branching decisions by *tightening variable bounds* rather than
/// appending `>=`/`<=` rows.  The bounded-variable revised simplex handles
/// bounds implicitly, so child relaxations keep the parent's constraint
/// matrix dimensions — which is exactly what lets them warm-start from the
/// parent basis.  Returns `None` when the accumulated bounds are
/// contradictory (the child is trivially infeasible).
fn apply_bounds(base: &Problem, bounds: &[(usize, f64, f64)]) -> Option<Problem> {
    let mut p = base.clone();
    for &(var, lo, hi) in bounds {
        let v = crate::model::VarId(var);
        let def = &p.vars()[var];
        let new_lo = def.lower.max(lo);
        let new_hi = def.upper.min(hi);
        if new_lo > new_hi {
            return None;
        }
        p.set_var_bounds(v, new_lo, new_hi);
    }
    Some(p)
}

/// Finds the integer variable whose relaxation value is most fractional.
fn most_fractional(problem: &Problem, values: &[f64]) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64, f64)> = None;
    for (i, def) in problem.vars().iter().enumerate() {
        if !def.integer {
            continue;
        }
        let v = values[i];
        let frac = (v - v.round()).abs();
        if frac > INT_EPS {
            let distance_to_half = (frac - 0.5).abs();
            if best.is_none() || distance_to_half < best.unwrap().2 {
                best = Some((i, v, distance_to_half));
            }
        }
    }
    best.map(|(i, v, _)| (i, v))
}

/// Solves a mixed-integer problem by branch and bound on the LP relaxation.
///
/// # Errors
///
/// Returns [`LpError::Infeasible`] when no integer-feasible point exists,
/// [`LpError::Unbounded`] when the relaxation is unbounded, and
/// [`LpError::NodeLimit`] when the node budget is exhausted without any
/// incumbent (or when `accept_incumbent_on_limit` is false).
pub fn solve(
    problem: &Problem,
    simplex_options: &SimplexOptions,
    options: &MilpOptions,
) -> LpResult<Solution> {
    let maximize = problem.sense() == Sense::Maximize;
    let better = |a: f64, b: f64| if maximize { a > b + options.absolute_gap } else { a < b - options.absolute_gap };

    let mut incumbent: Option<Solution> = None;
    let mut stack = vec![Node { bounds: Vec::new(), depth: 0, parent_basis: None }];
    let mut nodes = 0usize;
    let mut any_feasible_relaxation = false;

    while let Some(node) = stack.pop() {
        if nodes >= options.max_nodes {
            return match incumbent {
                Some(mut sol) if options.accept_incumbent_on_limit => {
                    sol.status = SolveStatus::Feasible;
                    Ok(sol)
                }
                _ => Err(LpError::NodeLimit { nodes }),
            };
        }
        nodes += 1;
        palmed_obs::counter!("lp.milp.nodes").inc();

        let Some(sub) = apply_bounds(problem, &node.bounds) else {
            // Contradictory branch bounds: prune without an LP solve.
            continue;
        };
        // Children only perturb variable bounds, so the parent's final basis
        // is dimensionally valid and usually a handful of pivots from the
        // child's optimum.
        let info = match revised::solve_with_warm_start(
            &sub,
            simplex_options,
            node.parent_basis.as_ref(),
        ) {
            Ok(info) => info,
            Err(LpError::Infeasible) => continue,
            Err(e) => return Err(e),
        };
        let relaxed = info.solution;
        let node_basis = info.basis;
        any_feasible_relaxation = true;

        // Bound: prune if the relaxation cannot beat the incumbent.
        if let Some(ref inc) = incumbent {
            let can_improve = better(relaxed.objective, inc.objective);
            if !can_improve {
                continue;
            }
        }

        match most_fractional(problem, &relaxed.values) {
            None => {
                // Integer feasible: round the integer variables exactly.
                let mut sol = relaxed;
                for (i, def) in problem.vars().iter().enumerate() {
                    if def.integer {
                        sol.values[i] = sol.values[i].round();
                    }
                }
                sol.objective = problem.objective().evaluate(&sol.values);
                let accept = match &incumbent {
                    None => true,
                    Some(inc) => better(sol.objective, inc.objective),
                };
                if accept {
                    incumbent = Some(sol);
                }
            }
            Some((var, value)) => {
                let floor = value.floor();
                let ceil = value.ceil();
                let mut down = node.bounds.clone();
                down.push((var, f64::NEG_INFINITY, floor));
                let mut up = node.bounds.clone();
                up.push((var, ceil, f64::INFINITY));
                let child = |bounds: Vec<(usize, f64, f64)>| Node {
                    bounds,
                    depth: node.depth + 1,
                    parent_basis: Some(node_basis.clone()),
                };
                // Depth-first: explore the branch closer to the fractional
                // value first (pushed last).
                if value - floor < 0.5 {
                    stack.push(child(up));
                    stack.push(child(down));
                } else {
                    stack.push(child(down));
                    stack.push(child(up));
                }
            }
        }
    }

    // No incumbent: integer-infeasible, whether or not some relaxation was
    // continuously feasible.
    let _ = any_feasible_relaxation;
    incumbent.ok_or(LpError::Infeasible)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Problem, Sense};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-5, "{a} != {b}");
    }

    #[test]
    fn knapsack_small() {
        // max 10a + 13b + 7c, 3a + 4b + 2c <= 6, binary -> a=0,b=1,c=1 (20) vs a=1,c=1 (17)
        let mut p = Problem::new(Sense::Maximize);
        let a = p.add_bool_var("a");
        let b = p.add_bool_var("b");
        let c = p.add_bool_var("c");
        p.add_le(p.expr().term(3.0, a).term(4.0, b).term(2.0, c), 6.0);
        p.set_objective(p.expr().term(10.0, a).term(13.0, b).term(7.0, c));
        let sol = p.solve().unwrap();
        assert_close(sol.objective, 20.0);
        assert_close(sol[b], 1.0);
        assert_close(sol[c], 1.0);
    }

    #[test]
    fn integer_rounding_matters() {
        // max x + y s.t. 2x + 2y <= 5, integers -> obj 2 (relaxation 2.5)
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_int_var("x", 0.0, 10.0);
        let y = p.add_int_var("y", 0.0, 10.0);
        p.add_le(p.expr().term(2.0, x).term(2.0, y), 5.0);
        p.set_objective(p.expr().term(1.0, x).term(1.0, y));
        let sol = p.solve().unwrap();
        assert_close(sol.objective, 2.0);
        let relaxed = p.solve_relaxation(&SimplexOptions::default()).unwrap();
        assert_close(relaxed.objective, 2.5);
    }

    #[test]
    fn set_cover_minimization() {
        // Cover elements {1,2,3} with sets A={1,2}, B={2,3}, C={3}, D={1,3}.
        // Optimal cover size 2 (A + B, or A + C, or ...).
        let mut p = Problem::new(Sense::Minimize);
        let a = p.add_bool_var("A");
        let b = p.add_bool_var("B");
        let c = p.add_bool_var("C");
        let d = p.add_bool_var("D");
        p.add_ge(p.expr().term(1.0, a).term(1.0, d), 1.0); // element 1
        p.add_ge(p.expr().term(1.0, a).term(1.0, b), 1.0); // element 2
        p.add_ge(p.expr().term(1.0, b).term(1.0, c).term(1.0, d), 1.0); // element 3
        p.set_objective(p.expr().term(1.0, a).term(1.0, b).term(1.0, c).term(1.0, d));
        let sol = p.solve().unwrap();
        assert_close(sol.objective, 2.0);
    }

    #[test]
    fn infeasible_integer_problem() {
        // 2x == 3 with x integer.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_int_var("x", 0.0, 10.0);
        p.add_eq(p.expr().term(2.0, x), 3.0);
        p.set_objective(p.expr().term(1.0, x));
        assert_eq!(p.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn mixed_continuous_and_integer() {
        // max 2x + y with x integer <= 3.7 constraint, y continuous <= 1.5
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_int_var("x", 0.0, 10.0);
        let y = p.add_var("y", 0.0, 1.5);
        p.add_le(p.expr().term(1.0, x), 3.7);
        p.set_objective(p.expr().term(2.0, x).term(1.0, y));
        let sol = p.solve().unwrap();
        assert_close(sol[x], 3.0);
        assert_close(sol[y], 1.5);
        assert_close(sol.objective, 7.5);
    }

    #[test]
    fn node_limit_reports_feasible_incumbent() {
        let mut p = Problem::new(Sense::Maximize);
        let vars: Vec<_> = (0..12).map(|i| p.add_bool_var(format!("b{i}"))).collect();
        let mut cap = p.expr();
        let mut obj = p.expr();
        for (i, &v) in vars.iter().enumerate() {
            cap.add_term((i % 5 + 1) as f64, v);
            obj.add_term((i % 7 + 1) as f64, v);
        }
        p.add_le(cap, 11.0);
        p.set_objective(obj);
        let opts = MilpOptions { max_nodes: 5, ..MilpOptions::default() };
        // With a tiny node budget we still expect either a feasible incumbent
        // or a NodeLimit error, never a panic.
        match p.solve_with(&SimplexOptions::default(), &opts) {
            Ok(sol) => assert!(matches!(sol.status, SolveStatus::Feasible | SolveStatus::Optimal)),
            Err(e) => assert!(matches!(e, LpError::NodeLimit { .. })),
        }
    }
}
