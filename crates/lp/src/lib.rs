//! Linear-programming substrate for the Palmed reproduction.
//!
//! The Palmed pipeline ([LP1], [LP2] and [LPAUX] in the paper) is built on
//! top of small, dense linear programs and integer linear programs.  The
//! original implementation delegated these to an off-the-shelf solver; this
//! crate provides a from-scratch, dependency-free replacement:
//!
//! * [`model`] — a tiny modelling layer: variables with bounds, linear
//!   expressions, constraints and an objective ([`Problem`]).
//! * [`simplex`] — a dense two-phase primal simplex solver for continuous
//!   linear programs.
//! * [`milp`] — a depth-first branch-and-bound mixed-integer solver layered
//!   on the simplex relaxation.
//! * [`minimax`] — helpers that linearise `min`/`max` objectives, which the
//!   Palmed formulations use pervasively (resource loads are maxima).
//!
//! The solver is exact (up to floating-point tolerance) and geared towards
//! the problem sizes Palmed generates: tens to a few hundred variables and
//! constraints per solve, solved many thousands of times.
//!
//! # Example
//!
//! ```
//! use palmed_lp::{Problem, Sense};
//!
//! // maximise x + 2y subject to x + y <= 4, x <= 3, y <= 2, x,y >= 0
//! let mut p = Problem::new(Sense::Maximize);
//! let x = p.add_var("x", 0.0, f64::INFINITY);
//! let y = p.add_var("y", 0.0, 2.0);
//! p.add_le(p.expr().term(1.0, x).term(1.0, y), 4.0);
//! p.add_le(p.expr().term(1.0, x), 3.0);
//! p.set_objective(p.expr().term(1.0, x).term(2.0, y));
//! let sol = p.solve().unwrap();
//! assert!((sol.objective - 6.0).abs() < 1e-6);
//! assert!((sol[x] - 2.0).abs() < 1e-6);
//! assert!((sol[y] - 2.0).abs() < 1e-6);
//! ```

pub mod error;
pub mod milp;
pub mod minimax;
pub mod model;
pub mod simplex;

pub use error::{LpError, LpResult};
pub use milp::MilpOptions;
pub use model::{Constraint, ConstraintOp, LinExpr, Problem, Sense, Solution, VarId};
pub use simplex::SimplexOptions;

/// Default numeric tolerance used throughout the solver.
pub const EPS: f64 = 1e-9;

/// Tolerance used when deciding whether a value is integral.
pub const INT_EPS: f64 = 1e-6;
