//! Linear-programming substrate for the Palmed reproduction.
//!
//! The Palmed pipeline (LP1, LP2 and LPAUX in the paper) is built on
//! thousands of small, sparse linear programs and integer linear programs.
//! The original implementation delegated these to an off-the-shelf solver;
//! this crate provides a from-scratch, dependency-free replacement:
//!
//! * [`model`] — a tiny modelling layer: variables with bounds, linear
//!   expressions, constraints and an objective ([`Problem`]).
//! * [`revised`] — the production solver: a **sparse revised simplex** over
//!   column-major (CSC) storage with implicit lower/upper variable bounds
//!   (no bound rows, no free-variable splitting), a dense-LU + product-form
//!   eta factorised basis, and **warm starting** via a reusable [`Basis`]
//!   handle ([`solve_with_warm_start`]).
//! * [`simplex`] — shared [`SimplexOptions`] and the default `solve` entry
//!   point (routes to the revised solver).
//! * [`simplex_dense`] — the original dense two-phase tableau, retained
//!   behind the same `Problem`/`Solution` API purely for differential
//!   testing against the revised path.
//! * [`milp`] — a depth-first branch-and-bound mixed-integer solver layered
//!   on the simplex relaxation.  Child nodes tighten variable *bounds* (not
//!   rows) and warm-start from the parent basis.
//! * [`minimax`] — helpers that linearise `min`/`max` objectives, which the
//!   Palmed formulations use pervasively (resource loads are maxima).
//!
//! The solver is exact (up to floating-point tolerance) and geared towards
//! the problem sizes Palmed generates: tens to a few hundred variables and
//! constraints per solve, solved many thousands of times — often as small
//! perturbations of each other, which is where warm starts pay off.
//!
//! # Example
//!
//! ```
//! use palmed_lp::{Problem, Sense};
//!
//! // maximise x + 2y subject to x + y <= 4, x <= 3, y <= 2, x,y >= 0
//! let mut p = Problem::new(Sense::Maximize);
//! let x = p.add_var("x", 0.0, f64::INFINITY);
//! let y = p.add_var("y", 0.0, 2.0);
//! p.add_le(p.expr().term(1.0, x).term(1.0, y), 4.0);
//! p.add_le(p.expr().term(1.0, x), 3.0);
//! p.set_objective(p.expr().term(1.0, x).term(2.0, y));
//! let sol = p.solve().unwrap();
//! assert!((sol.objective - 6.0).abs() < 1e-6);
//! assert!((sol[x] - 2.0).abs() < 1e-6);
//! assert!((sol[y] - 2.0).abs() < 1e-6);
//! ```
//!
//! # Warm starting
//!
//! ```
//! use palmed_lp::{revised, Problem, Sense, SimplexOptions};
//!
//! let build = |rhs: f64| {
//!     let mut p = Problem::new(Sense::Maximize);
//!     let x = p.add_var("x", 0.0, 3.0);
//!     let y = p.add_var("y", 0.0, 3.0);
//!     p.add_le(p.expr().term(1.0, x).term(1.0, y), rhs);
//!     p.set_objective(p.expr().term(2.0, x).term(1.0, y));
//!     p
//! };
//! let opts = SimplexOptions::default();
//! let first = revised::solve_with_warm_start(&build(4.0), &opts, None).unwrap();
//! // Perturb the right-hand side and restart from the previous basis.
//! let again =
//!     revised::solve_with_warm_start(&build(4.5), &opts, Some(&first.basis)).unwrap();
//! assert!(again.iterations <= first.iterations);
//! ```

pub mod error;
pub mod milp;
pub mod minimax;
pub mod model;
pub mod revised;
pub mod simplex;
pub mod simplex_dense;

pub use error::{LpError, LpResult};
pub use milp::MilpOptions;
pub use model::{Constraint, ConstraintOp, LinExpr, Problem, Sense, Solution, VarId};
pub use revised::{solve_with_warm_start, Basis, SolveInfo};
pub use simplex::SimplexOptions;

/// Default numeric tolerance used throughout the solver.
pub const EPS: f64 = 1e-9;

/// Tolerance used when deciding whether a value is integral.
pub const INT_EPS: f64 = 1e-6;
