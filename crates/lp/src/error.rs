//! Error types for the LP/MILP solver.

use std::fmt;

/// Result alias used by every fallible solver entry point.
pub type LpResult<T> = Result<T, LpError>;

/// Errors produced while building or solving a linear program.
#[derive(Debug, Clone, PartialEq)]
pub enum LpError {
    /// The constraint set admits no feasible point.
    Infeasible,
    /// The objective is unbounded in the optimisation direction.
    Unbounded,
    /// The simplex iteration limit was exhausted before convergence.
    IterationLimit {
        /// Number of pivots performed before giving up.
        iterations: usize,
    },
    /// The branch-and-bound node budget was exhausted before proving
    /// optimality; the incumbent (if any) is reported separately.
    NodeLimit {
        /// Number of explored nodes.
        nodes: usize,
    },
    /// A variable identifier does not belong to the problem it was used with.
    UnknownVariable {
        /// Index of the offending variable.
        index: usize,
        /// Number of variables in the problem.
        problem_size: usize,
    },
    /// A variable was declared with an empty domain (lower bound above upper
    /// bound) or a non-finite bound where a finite one is required.
    InvalidBounds {
        /// Name of the offending variable.
        name: String,
        /// Declared lower bound.
        lower: f64,
        /// Declared upper bound.
        upper: f64,
    },
    /// A coefficient or right-hand side was not a finite number.
    NonFiniteCoefficient {
        /// Human readable location of the offending coefficient.
        context: String,
    },
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "problem is infeasible"),
            LpError::Unbounded => write!(f, "objective is unbounded"),
            LpError::IterationLimit { iterations } => {
                write!(f, "simplex iteration limit reached after {iterations} pivots")
            }
            LpError::NodeLimit { nodes } => {
                write!(f, "branch-and-bound node limit reached after {nodes} nodes")
            }
            LpError::UnknownVariable { index, problem_size } => write!(
                f,
                "variable index {index} does not belong to a problem with {problem_size} variables"
            ),
            LpError::InvalidBounds { name, lower, upper } => {
                write!(f, "variable `{name}` has invalid bounds [{lower}, {upper}]")
            }
            LpError::NonFiniteCoefficient { context } => {
                write!(f, "non-finite coefficient in {context}")
            }
        }
    }
}

impl std::error::Error for LpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            LpError::Infeasible,
            LpError::Unbounded,
            LpError::IterationLimit { iterations: 3 },
            LpError::NodeLimit { nodes: 7 },
            LpError::UnknownVariable { index: 2, problem_size: 1 },
            LpError::InvalidBounds { name: "x".into(), lower: 1.0, upper: 0.0 },
            LpError::NonFiniteCoefficient { context: "objective".into() },
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LpError>();
    }
}
